//===- x86/FastDecoder.cpp ------------------------------------*- C++ -*-===//

#include "x86/FastDecoder.h"

using namespace rocksalt;
using namespace rocksalt::x86;

namespace {

constexpr size_t MaxInstrLen = 15;

/// Byte cursor with failure tracking.
class Reader {
  const uint8_t *Data;
  size_t Size;

public:
  size_t Pos = 0;
  bool Failed = false;

  Reader(const uint8_t *D, size_t S)
      : Data(D), Size(S < MaxInstrLen ? S : MaxInstrLen) {}

  uint8_t peek() {
    if (Pos >= Size) {
      Failed = true;
      return 0;
    }
    return Data[Pos];
  }
  uint8_t u8() {
    uint8_t B = peek();
    if (!Failed)
      ++Pos;
    return B;
  }
  uint32_t u16() {
    uint32_t Lo = u8();
    uint32_t Hi = u8();
    return Lo | (Hi << 8);
  }
  uint32_t u32() {
    uint32_t Lo = u16();
    uint32_t Hi = u16();
    return Lo | (Hi << 16);
  }
  uint32_t s8() {
    return static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int8_t>(u8())));
  }
  /// Word immediate: 16-bit under the operand-size override.
  uint32_t immW(bool Op16) { return Op16 ? u16() : u32(); }
};

struct ModRM {
  uint8_t RegField = 0;
  Operand Rm;
};

/// Decodes modrm (+sib +disp) with the same canonicalization the grammar
/// uses: disp8 sign-extended, SIB index 100 = no index, mod=00 base=101
/// (plain or SIB) = disp32 with no base.
ModRM readModrm(Reader &R) {
  ModRM Out;
  uint8_t B = R.u8();
  uint8_t Mod = B >> 6;
  Out.RegField = (B >> 3) & 7;
  uint8_t Rm = B & 7;

  if (Mod == 3) {
    Out.Rm = Operand::reg(regFromEncoding(Rm));
    return Out;
  }

  Addr A;
  if (Rm == 4) {
    uint8_t Sib = R.u8();
    uint8_t ScaleBits = Sib >> 6;
    uint8_t IndexEnc = (Sib >> 3) & 7;
    uint8_t BaseEnc = Sib & 7;
    if (IndexEnc != 4)
      A.Index = std::make_pair(static_cast<Scale>(ScaleBits),
                               regFromEncoding(IndexEnc));
    if (Mod == 0 && BaseEnc == 5) {
      A.Disp = R.u32();
    } else {
      A.Base = regFromEncoding(BaseEnc);
      if (Mod == 1)
        A.Disp = R.s8();
      else if (Mod == 2)
        A.Disp = R.u32();
    }
  } else if (Mod == 0 && Rm == 5) {
    A.Disp = R.u32();
  } else {
    A.Base = regFromEncoding(Rm);
    if (Mod == 1)
      A.Disp = R.s8();
    else if (Mod == 2)
      A.Disp = R.u32();
  }
  Out.Rm = Operand::mem(A);
  return Out;
}

Instr makeInstr(Opcode Op) {
  Instr I;
  I.Op = Op;
  return I;
}

/// Two-byte (0F xx) opcode map.
std::optional<Instr> decode0F(Reader &R, bool Op16) {
  uint8_t B = R.u8();

  // CMOVcc.
  if ((B & 0xF0) == 0x40) {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Opcode::CMOVcc);
    I.CC = condFromEncoding(B & 0x0F);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  }
  // Jcc rel32.
  if ((B & 0xF0) == 0x80) {
    Instr I = makeInstr(Opcode::Jcc);
    I.CC = condFromEncoding(B & 0x0F);
    I.Op1 = Operand::imm(R.u32());
    return I;
  }
  // SETcc (the grammar requires the /0 digit).
  if ((B & 0xF0) == 0x90) {
    ModRM M = readModrm(R);
    if (M.RegField != 0)
      return std::nullopt;
    Instr I = makeInstr(Opcode::SETcc);
    I.W = false;
    I.CC = condFromEncoding(B & 0x0F);
    I.Op1 = M.Rm;
    return I;
  }
  // BSWAP.
  if ((B & 0xF8) == 0xC8) {
    Instr I = makeInstr(Opcode::BSWAP);
    I.Op1 = Operand::reg(regFromEncoding(B & 7));
    return I;
  }

  auto RegRm = [&R](Opcode Op) -> std::optional<Instr> {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Op);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  };
  auto RmReg = [&R](Opcode Op, bool W) -> std::optional<Instr> {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Op);
    I.W = W;
    I.Op1 = M.Rm;
    I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    return I;
  };
  auto FarLoad = [&R](Opcode Op) -> std::optional<Instr> {
    ModRM M = readModrm(R);
    if (!M.Rm.isMem())
      return std::nullopt;
    Instr I = makeInstr(Op);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  };
  auto SegStack = [](Opcode Op, SegReg S) {
    Instr I = makeInstr(Op);
    I.Seg = S;
    return I;
  };

  switch (B) {
  case 0xA0: return SegStack(Opcode::PUSHSR, SegReg::FS);
  case 0xA1: return SegStack(Opcode::POPSR, SegReg::FS);
  case 0xA8: return SegStack(Opcode::PUSHSR, SegReg::GS);
  case 0xA9: return SegStack(Opcode::POPSR, SegReg::GS);
  case 0xA3: return RmReg(Opcode::BT, true);
  case 0xAB: return RmReg(Opcode::BTS, true);
  case 0xB3: return RmReg(Opcode::BTR, true);
  case 0xBB: return RmReg(Opcode::BTC, true);
  case 0xA4:
  case 0xAC: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(B == 0xA4 ? Opcode::SHLD : Opcode::SHRD);
    I.Op1 = M.Rm;
    I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    I.Op3 = Operand::imm(R.u8());
    return I;
  }
  case 0xA5:
  case 0xAD: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(B == 0xA5 ? Opcode::SHLD : Opcode::SHRD);
    I.Op1 = M.Rm;
    I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    I.Op3 = Operand::reg(Reg::ECX);
    return I;
  }
  case 0xAF: return RegRm(Opcode::IMUL);
  case 0xB0:
  case 0xB1: return RmReg(Opcode::CMPXCHG, B & 1);
  case 0xC0:
  case 0xC1: return RmReg(Opcode::XADD, B & 1);
  case 0xB2: return FarLoad(Opcode::LSS);
  case 0xB4: return FarLoad(Opcode::LFS);
  case 0xB5: return FarLoad(Opcode::LGS);
  case 0xB6:
  case 0xB7:
  case 0xBE:
  case 0xBF: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(B < 0xBE ? Opcode::MOVZX : Opcode::MOVSX);
    I.W = B & 1; // source width bit
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  }
  case 0xBA: {
    ModRM M = readModrm(R);
    Opcode Op;
    switch (M.RegField) {
    case 4: Op = Opcode::BT; break;
    case 5: Op = Opcode::BTS; break;
    case 6: Op = Opcode::BTR; break;
    case 7: Op = Opcode::BTC; break;
    default: return std::nullopt;
    }
    Instr I = makeInstr(Op);
    I.Op1 = M.Rm;
    I.Op2 = Operand::imm(R.u8());
    return I;
  }
  case 0xBC: return RegRm(Opcode::BSF);
  case 0xBD: return RegRm(Opcode::BSR);
  default:
    return std::nullopt;
  }
  (void)Op16;
}

/// One-byte opcode map.
std::optional<Instr> decodeBody(Reader &R, bool Op16) {
  uint8_t B = R.u8();
  if (R.Failed)
    return std::nullopt;

  // ALU family 00-3D (skipping the 06/07/0E/0F/16/17/1E/1F/26/27/2E/2F/
  // 36/37/3E/3F columns handled below).
  if (B < 0x40) {
    uint8_t Low = B & 7;
    uint8_t TTT = (B >> 3) & 7;
    static const Opcode AluOps[] = {Opcode::ADD, Opcode::OR,  Opcode::ADC,
                                    Opcode::SBB, Opcode::AND, Opcode::SUB,
                                    Opcode::XOR, Opcode::CMP};
    if (Low < 6) {
      Opcode Op = AluOps[TTT];
      if (Low < 4) {
        ModRM M = readModrm(R);
        Instr I = makeInstr(Op);
        I.W = Low & 1;
        if (Low < 2) {
          I.Op1 = M.Rm;
          I.Op2 = Operand::reg(regFromEncoding(M.RegField));
        } else {
          I.Op1 = Operand::reg(regFromEncoding(M.RegField));
          I.Op2 = M.Rm;
        }
        return I;
      }
      Instr I = makeInstr(Op);
      I.Op1 = Operand::reg(Reg::EAX);
      if (Low == 4) {
        I.W = false;
        I.Op2 = Operand::imm(R.u8());
      } else {
        I.Op2 = Operand::imm(R.immW(Op16));
      }
      return I;
    }
    // Columns 6/7: segment push/pop and the BCD adjust column.
    switch (B) {
    case 0x06: { Instr I = makeInstr(Opcode::PUSHSR); I.Seg = SegReg::ES; return I; }
    case 0x07: { Instr I = makeInstr(Opcode::POPSR); I.Seg = SegReg::ES; return I; }
    case 0x0E: { Instr I = makeInstr(Opcode::PUSHSR); I.Seg = SegReg::CS; return I; }
    case 0x16: { Instr I = makeInstr(Opcode::PUSHSR); I.Seg = SegReg::SS; return I; }
    case 0x17: { Instr I = makeInstr(Opcode::POPSR); I.Seg = SegReg::SS; return I; }
    case 0x1E: { Instr I = makeInstr(Opcode::PUSHSR); I.Seg = SegReg::DS; return I; }
    case 0x1F: { Instr I = makeInstr(Opcode::POPSR); I.Seg = SegReg::DS; return I; }
    case 0x0F: return decode0F(R, Op16);
    case 0x27: return makeInstr(Opcode::DAA);
    case 0x2F: return makeInstr(Opcode::DAS);
    case 0x37: return makeInstr(Opcode::AAA);
    case 0x3F: return makeInstr(Opcode::AAS);
    default:
      return std::nullopt; // stray prefix bytes land here too
    }
  }

  // 40-5F: inc/dec/push/pop r32.
  if (B < 0x60) {
    static const Opcode Ops[] = {Opcode::INC, Opcode::DEC, Opcode::PUSH,
                                 Opcode::POP};
    Instr I = makeInstr(Ops[(B - 0x40) >> 3]);
    I.Op1 = Operand::reg(regFromEncoding(B & 7));
    return I;
  }

  switch (B) {
  case 0x60: return makeInstr(Opcode::PUSHA);
  case 0x61: return makeInstr(Opcode::POPA);
  case 0x68: {
    Instr I = makeInstr(Opcode::PUSH);
    I.Op1 = Operand::imm(R.immW(Op16));
    return I;
  }
  case 0x6A: {
    Instr I = makeInstr(Opcode::PUSH);
    I.Op1 = Operand::imm(R.s8());
    return I;
  }
  case 0x69:
  case 0x6B: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Opcode::IMUL);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    I.Op3 = Operand::imm(B == 0x69 ? R.immW(Op16) : R.s8());
    return I;
  }
  default:
    break;
  }

  // 70-7F: Jcc rel8.
  if ((B & 0xF0) == 0x70) {
    Instr I = makeInstr(Opcode::Jcc);
    I.CC = condFromEncoding(B & 0x0F);
    I.Op1 = Operand::imm(R.s8());
    return I;
  }

  switch (B) {
  case 0x80:
  case 0x81:
  case 0x83: {
    ModRM M = readModrm(R);
    static const Opcode AluOps[] = {Opcode::ADD, Opcode::OR,  Opcode::ADC,
                                    Opcode::SBB, Opcode::AND, Opcode::SUB,
                                    Opcode::XOR, Opcode::CMP};
    Instr I = makeInstr(AluOps[M.RegField]);
    I.Op1 = M.Rm;
    if (B == 0x80) {
      I.W = false;
      I.Op2 = Operand::imm(R.u8());
    } else if (B == 0x81) {
      I.Op2 = Operand::imm(R.immW(Op16));
    } else {
      I.Op2 = Operand::imm(R.s8());
    }
    return I;
  }
  case 0x84:
  case 0x85: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Opcode::TEST);
    I.W = B & 1;
    I.Op1 = M.Rm;
    I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    return I;
  }
  case 0x86:
  case 0x87: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Opcode::XCHG);
    I.W = B & 1;
    I.Op1 = M.Rm;
    I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    return I;
  }
  case 0x88:
  case 0x89:
  case 0x8A:
  case 0x8B: {
    ModRM M = readModrm(R);
    Instr I = makeInstr(Opcode::MOV);
    I.W = B & 1;
    if (B < 0x8A) {
      I.Op1 = M.Rm;
      I.Op2 = Operand::reg(regFromEncoding(M.RegField));
    } else {
      I.Op1 = Operand::reg(regFromEncoding(M.RegField));
      I.Op2 = M.Rm;
    }
    return I;
  }
  case 0x8C:
  case 0x8E: {
    ModRM M = readModrm(R);
    if (M.RegField >= NumSegRegs)
      return std::nullopt;
    Instr I = makeInstr(Opcode::MOVSR);
    I.Seg = segFromEncoding(M.RegField);
    if (B == 0x8C)
      I.Op1 = M.Rm;
    else
      I.Op2 = M.Rm;
    return I;
  }
  case 0x8D: {
    ModRM M = readModrm(R);
    if (!M.Rm.isMem())
      return std::nullopt;
    Instr I = makeInstr(Opcode::LEA);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  }
  case 0x8F: {
    ModRM M = readModrm(R);
    if (M.RegField != 0)
      return std::nullopt;
    Instr I = makeInstr(Opcode::POP);
    I.Op1 = M.Rm;
    return I;
  }
  case 0x90: return makeInstr(Opcode::NOP);
  case 0x98: return makeInstr(Opcode::CWDE);
  case 0x99: return makeInstr(Opcode::CDQ);
  case 0x9A: {
    Instr I = makeInstr(Opcode::CALL);
    I.Near = false;
    I.Absolute = false;
    I.Op1 = Operand::imm(R.u32());
    I.Sel = static_cast<uint16_t>(R.u16());
    return I;
  }
  case 0x9C: return makeInstr(Opcode::PUSHF);
  case 0x9D: return makeInstr(Opcode::POPF);
  case 0x9E: return makeInstr(Opcode::SAHF);
  case 0x9F: return makeInstr(Opcode::LAHF);
  case 0xA0:
  case 0xA1:
  case 0xA2:
  case 0xA3: {
    Instr I = makeInstr(Opcode::MOV);
    I.W = B & 1;
    Operand M = Operand::mem(Addr::disp(R.u32()));
    Operand A = Operand::reg(Reg::EAX);
    if (B < 0xA2) {
      I.Op1 = A;
      I.Op2 = M;
    } else {
      I.Op1 = M;
      I.Op2 = A;
    }
    return I;
  }
  case 0xA8:
  case 0xA9: {
    Instr I = makeInstr(Opcode::TEST);
    I.W = B & 1;
    I.Op1 = Operand::reg(Reg::EAX);
    I.Op2 = Operand::imm(B == 0xA8 ? R.u8() : R.immW(Op16));
    return I;
  }
  case 0xC2:
  case 0xC3:
  case 0xCA:
  case 0xCB: {
    Instr I = makeInstr(Opcode::RET);
    I.Near = B < 0xCA;
    if ((B & 1) == 0)
      I.Op1 = Operand::imm(R.u16());
    return I;
  }
  case 0xC4:
  case 0xC5: {
    ModRM M = readModrm(R);
    if (!M.Rm.isMem())
      return std::nullopt;
    Instr I = makeInstr(B == 0xC4 ? Opcode::LES : Opcode::LDS);
    I.Op1 = Operand::reg(regFromEncoding(M.RegField));
    I.Op2 = M.Rm;
    return I;
  }
  case 0xC6:
  case 0xC7: {
    ModRM M = readModrm(R);
    if (M.RegField != 0)
      return std::nullopt;
    Instr I = makeInstr(Opcode::MOV);
    I.W = B & 1;
    I.Op1 = M.Rm;
    I.Op2 = Operand::imm(B == 0xC6 ? R.u8() : R.immW(Op16));
    return I;
  }
  case 0xC8: {
    Instr I = makeInstr(Opcode::ENTER);
    I.Op1 = Operand::imm(R.u16());
    I.Op2 = Operand::imm(R.u8());
    return I;
  }
  case 0xC9: return makeInstr(Opcode::LEAVE);
  case 0xCC: return makeInstr(Opcode::INT3);
  case 0xCD: {
    Instr I = makeInstr(Opcode::INT);
    I.Op1 = Operand::imm(R.u8());
    return I;
  }
  case 0xCE: return makeInstr(Opcode::INTO);
  case 0xCF: return makeInstr(Opcode::IRET);
  case 0xD4:
  case 0xD5: {
    Instr I = makeInstr(B == 0xD4 ? Opcode::AAM : Opcode::AAD);
    I.Op1 = Operand::imm(R.u8());
    return I;
  }
  case 0xD7: return makeInstr(Opcode::XLAT);
  case 0xE3: {
    Instr I = makeInstr(Opcode::JCXZ);
    I.Op1 = Operand::imm(R.s8());
    return I;
  }
  case 0xE2:
  case 0xE1:
  case 0xE0: {
    static const Opcode LoopOps[] = {Opcode::LOOPNZ, Opcode::LOOPZ,
                                     Opcode::LOOP};
    Instr I = makeInstr(LoopOps[B - 0xE0]);
    I.Op1 = Operand::imm(R.s8());
    return I;
  }
  case 0xE8: {
    Instr I = makeInstr(Opcode::CALL);
    I.Op1 = Operand::imm(R.u32());
    return I;
  }
  case 0xE9:
  case 0xEB: {
    Instr I = makeInstr(Opcode::JMP);
    I.Op1 = Operand::imm(B == 0xE9 ? R.u32() : R.s8());
    return I;
  }
  case 0xEA: {
    Instr I = makeInstr(Opcode::JMP);
    I.Near = false;
    I.Absolute = false;
    I.Op1 = Operand::imm(R.u32());
    I.Sel = static_cast<uint16_t>(R.u16());
    return I;
  }
  case 0xF4: return makeInstr(Opcode::HLT);
  case 0xF5: return makeInstr(Opcode::CMC);
  case 0xF8: return makeInstr(Opcode::CLC);
  case 0xF9: return makeInstr(Opcode::STC);
  case 0xFA: return makeInstr(Opcode::CLI);
  case 0xFB: return makeInstr(Opcode::STI);
  case 0xFC: return makeInstr(Opcode::CLD);
  case 0xFD: return makeInstr(Opcode::STD);
  default:
    break;
  }

  // 91-97: xchg eAX, r.
  if (B > 0x90 && B <= 0x97) {
    Instr I = makeInstr(Opcode::XCHG);
    I.Op1 = Operand::reg(Reg::EAX);
    I.Op2 = Operand::reg(regFromEncoding(B & 7));
    return I;
  }
  // B0-BF: mov r, imm.
  if ((B & 0xF0) == 0xB0) {
    Instr I = makeInstr(Opcode::MOV);
    I.W = B >= 0xB8;
    I.Op1 = Operand::reg(regFromEncoding(B & 7));
    I.Op2 = Operand::imm(I.W ? R.immW(Op16) : R.u8());
    return I;
  }
  // C0/C1, D0-D3: shift group.
  if (B == 0xC0 || B == 0xC1 || (B >= 0xD0 && B <= 0xD3)) {
    ModRM M = readModrm(R);
    static const Opcode ShiftOps[] = {Opcode::ROL, Opcode::ROR, Opcode::RCL,
                                      Opcode::RCR, Opcode::SHL, Opcode::SHR,
                                      Opcode::SHL /*unused*/, Opcode::SAR};
    if (M.RegField == 6)
      return std::nullopt;
    Instr I = makeInstr(ShiftOps[M.RegField]);
    I.W = B & 1;
    I.Op1 = M.Rm;
    if (B <= 0xC1)
      I.Op2 = Operand::imm(R.u8());
    else if (B <= 0xD1)
      I.Op2 = Operand::imm(1);
    else
      I.Op2 = Operand::reg(Reg::ECX);
    return I;
  }
  // E4-E7, EC-EF: in/out.
  if ((B & 0xF4) == 0xE4) {
    bool IsOut = B & 2;
    bool HasImm = !(B & 8);
    Instr I = makeInstr(IsOut ? Opcode::OUT : Opcode::IN);
    I.W = B & 1;
    Operand Port =
        HasImm ? Operand::imm(R.u8()) : Operand::none();
    if (IsOut) {
      I.Op1 = Port;
      I.Op2 = Operand::reg(Reg::EAX);
    } else {
      I.Op1 = Operand::reg(Reg::EAX);
      I.Op2 = Port;
    }
    return I;
  }
  // A4-A7, AA-AF: string ops.
  if (B >= 0xA4 && B <= 0xAF && B != 0xA8 && B != 0xA9) {
    static const Opcode StrOps[] = {Opcode::MOVS, Opcode::MOVS, Opcode::CMPS,
                                    Opcode::CMPS, Opcode::NOP,  Opcode::NOP,
                                    Opcode::STOS, Opcode::STOS, Opcode::LODS,
                                    Opcode::LODS, Opcode::SCAS, Opcode::SCAS};
    Instr I = makeInstr(StrOps[B - 0xA4]);
    I.W = B & 1;
    return I;
  }
  // F6/F7: unary group.
  if (B == 0xF6 || B == 0xF7) {
    ModRM M = readModrm(R);
    Instr I;
    I.W = B & 1;
    switch (M.RegField) {
    case 0:
      I.Op = Opcode::TEST;
      I.Op1 = M.Rm;
      I.Op2 = Operand::imm(B == 0xF6 ? R.u8() : R.immW(Op16));
      return I;
    case 2: I.Op = Opcode::NOT; break;
    case 3: I.Op = Opcode::NEG; break;
    case 4: I.Op = Opcode::MUL; break;
    case 5: I.Op = Opcode::IMUL; break;
    case 6: I.Op = Opcode::DIV; break;
    case 7: I.Op = Opcode::IDIV; break;
    default: return std::nullopt;
    }
    I.Op1 = M.Rm;
    return I;
  }
  // FE: inc/dec r/m8.
  if (B == 0xFE) {
    ModRM M = readModrm(R);
    if (M.RegField > 1)
      return std::nullopt;
    Instr I = makeInstr(M.RegField == 0 ? Opcode::INC : Opcode::DEC);
    I.W = false;
    I.Op1 = M.Rm;
    return I;
  }
  // FF: inc/dec/call/jmp/push group.
  if (B == 0xFF) {
    ModRM M = readModrm(R);
    Instr I;
    switch (M.RegField) {
    case 0: I.Op = Opcode::INC; I.Op1 = M.Rm; return I;
    case 1: I.Op = Opcode::DEC; I.Op1 = M.Rm; return I;
    case 2:
      I.Op = Opcode::CALL;
      I.Absolute = true;
      I.Op1 = M.Rm;
      return I;
    case 3:
      if (!M.Rm.isMem())
        return std::nullopt;
      I.Op = Opcode::CALL;
      I.Near = false;
      I.Absolute = true;
      I.Op1 = M.Rm;
      return I;
    case 4:
      I.Op = Opcode::JMP;
      I.Absolute = true;
      I.Op1 = M.Rm;
      return I;
    case 5:
      if (!M.Rm.isMem())
        return std::nullopt;
      I.Op = Opcode::JMP;
      I.Near = false;
      I.Absolute = true;
      I.Op1 = M.Rm;
      return I;
    case 6: I.Op = Opcode::PUSH; I.Op1 = M.Rm; return I;
    default: return std::nullopt;
    }
  }

  return std::nullopt;
}

} // namespace

std::optional<Decoded> x86::fastDecode(const uint8_t *Data, size_t Size) {
  Reader R(Data, Size);
  Prefix Pfx;

  // Canonical prefix order: [lock|rep] [seg] [66].
  uint8_t Next = R.peek();
  if (!R.Failed && (Next == 0xF0 || Next == 0xF2 || Next == 0xF3)) {
    R.u8();
    if (Next == 0xF0)
      Pfx.Lock = true;
    else
      Pfx.Rep = Next == 0xF3 ? Prefix::RepKind::Rep : Prefix::RepKind::RepNe;
  }
  Next = R.peek();
  if (!R.Failed) {
    switch (Next) {
    case 0x26: Pfx.SegOverride = SegReg::ES; R.u8(); break;
    case 0x2E: Pfx.SegOverride = SegReg::CS; R.u8(); break;
    case 0x36: Pfx.SegOverride = SegReg::SS; R.u8(); break;
    case 0x3E: Pfx.SegOverride = SegReg::DS; R.u8(); break;
    case 0x64: Pfx.SegOverride = SegReg::FS; R.u8(); break;
    case 0x65: Pfx.SegOverride = SegReg::GS; R.u8(); break;
    default: break;
    }
  }
  Next = R.peek();
  if (!R.Failed && Next == 0x66) {
    R.u8();
    Pfx.OpSize = true;
  }

  std::optional<Instr> I = decodeBody(R, Pfx.OpSize);
  if (!I || R.Failed)
    return std::nullopt;
  I->Pfx.Lock = Pfx.Lock;
  I->Pfx.Rep = Pfx.Rep;
  I->Pfx.SegOverride = Pfx.SegOverride;
  I->Pfx.OpSize = Pfx.OpSize;

  Decoded D;
  D.I = *I;
  D.Length = static_cast<uint8_t>(R.Pos);
  return D;
}

std::optional<Decoded> x86::fastDecode(const std::vector<uint8_t> &Bytes) {
  return fastDecode(Bytes.data(), Bytes.size());
}
