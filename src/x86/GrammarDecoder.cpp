//===- x86/GrammarDecoder.cpp ---------------------------------*- C++ -*-===//

#include "x86/GrammarDecoder.h"

#include "x86/Grammars.h"

using namespace rocksalt;
using namespace rocksalt::x86;

std::optional<Decoded> x86::grammarDecode(const uint8_t *Data, size_t Size) {
  const X86Grammars &G = x86Grammars();
  gram::ParseResult<Instr> R = gram::parsePrefix(G.Full, Data, Size);
  if (!R.Matched)
    return std::nullopt;
  Decoded D;
  D.I = R.Value;
  D.Length = static_cast<uint8_t>(R.Length);
  return D;
}

std::optional<Decoded> x86::grammarDecode(const std::vector<uint8_t> &Bytes) {
  return grammarDecode(Bytes.data(), Bytes.size());
}
