//===- x86/Encoder.h - Instruction encoder (assembler) ---------*- C++ -*-===//
///
/// \file
/// Encodes abstract-syntax instructions back to bytes. This plays the
/// role of the assembler underneath the paper's NaCl-compiler substrate:
/// the workload generator and the NaCl-izing code generator produce
/// Instr values and rely on this encoder, and the round-trip property
/// tests (encode then decode) validate the decoders against it.
///
/// The encoder picks one canonical encoding per instruction form (e.g.
/// modrm forms over the short moffs MOV forms, the sign-extended imm8 ALU
/// form when the immediate fits). Alternate encodings are still decoded;
/// they are exercised by byte-level decoder tests and grammar fuzzing.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_ENCODER_H
#define ROCKSALT_X86_ENCODER_H

#include "x86/Instr.h"

#include <optional>
#include <vector>

namespace rocksalt {
namespace x86 {

/// Encodes \p I; returns std::nullopt for operand shapes this model has
/// no encoding for (e.g. an ALU op with two memory operands).
std::optional<std::vector<uint8_t>> encode(const Instr &I);

/// Convenience: encodes and asserts success. For code generators that
/// construct only encodable instructions.
std::vector<uint8_t> encodeOrDie(const Instr &I);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_ENCODER_H
