//===- x86/Grammars.cpp - Declarative x86 instruction grammars -*- C++ -*-===//
//
// Bit-level grammars for the IA-32 integer subset, in the style of the
// paper's Figure 2. Patterns are transcribed from the Intel opcode maps;
// semantic actions build Instr values. See Grammars.h for the decode
// conventions these grammars define.
//
//===----------------------------------------------------------------------===//

#include "x86/Grammars.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::x86;
using namespace rocksalt::gram;

namespace {

//===----------------------------------------------------------------------===//
// Bit-pattern helpers.
//===----------------------------------------------------------------------===//

std::string bitString(uint32_t V, int N) {
  std::string S(N, '0');
  for (int I = 0; I < N; ++I)
    if ((V >> (N - 1 - I)) & 1)
      S[I] = '1';
  return S;
}

Grammar<Unit> byteLitG(uint8_t B) {
  // One shared grammar per literal byte: opcode bytes recur across
  // hundreds of forms, and sharing lets per-factory strip/derivative
  // memos resolve each repeated subtree once.
  static const std::vector<Grammar<Unit>> Cache = [] {
    std::vector<Grammar<Unit>> C(256);
    for (unsigned V = 0; V < 256; ++V)
      C[V] = bitsG(bitString(V, 8));
    return C;
  }();
  return Cache[B];
}

/// A 3-bit register field capturing any register.
Grammar<Reg> regField() {
  static const Grammar<Reg> G = mapWith(
      field(3), [](uint32_t V) { return regFromEncoding(uint8_t(V)); });
  return G;
}

/// A 3-bit register field restricted to the given encodings.
Grammar<Reg> regFieldOf(std::initializer_list<uint8_t> Encs) {
  Grammar<Reg> Out = voidG<Reg>();
  for (uint8_t E : Encs) {
    Reg R = regFromEncoding(E);
    Out = alt(Out, mapWith(bitsG(bitString(E, 3)), [R](Unit) { return R; }));
  }
  return Out;
}

Grammar<uint32_t> imm8zx() {
  static const Grammar<uint32_t> G =
      mapWith(byteG(), [](uint8_t B) { return uint32_t(B); });
  return G;
}

Grammar<uint32_t> imm8sx() {
  static const Grammar<uint32_t> G = mapWith(byteG(), [](uint8_t B) {
    return static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(B)));
  });
  return G;
}

Grammar<uint32_t> imm16zx() {
  static const Grammar<uint32_t> G =
      mapWith(halfwordLE(), [](uint16_t H) { return uint32_t(H); });
  return G;
}

/// Word-sized immediate: 16-bit under the operand-size override, 32-bit
/// otherwise (both stored zero-extended).
Grammar<uint32_t> immW(bool Op16) { return Op16 ? imm16zx() : wordLE(); }

//===----------------------------------------------------------------------===//
// ModRM / SIB.
//
// Byte layout (MSB first): mod(2) reg(3) rm(3); SIB: scale(2) index(3)
// base(3). The grammars below alternate over the mod values because the
// interpretation of rm (and the presence of SIB/displacement bytes)
// depends on mod.
//===----------------------------------------------------------------------===//

Grammar<Scale> scaleField() {
  static const Grammar<Scale> G = mapWith(
      field(2), [](uint32_t V) { return static_cast<Scale>(V); });
  return G;
}

/// SIB index: 100 means "no index"; ESP is not encodable as an index.
Grammar<std::optional<Reg>> sibIndex() {
  static const Grammar<std::optional<Reg>> G =
      alt(mapWith(bitsG("100"), [](Unit) { return std::optional<Reg>{}; }),
          mapWith(regFieldOf({0, 1, 2, 3, 5, 6, 7}),
                  [](Reg R) { return std::optional<Reg>(R); }));
  return G;
}

Addr makeAddr(std::optional<Reg> Base, Scale S, std::optional<Reg> Index,
              uint32_t Disp) {
  Addr A;
  A.Disp = Disp;
  A.Base = Base;
  if (Index)
    A.Index = std::make_pair(S, *Index);
  return A;
}

/// SIB tail for mod=00: base=101 means disp32 with no base register.
Grammar<Operand> sibTail0Fresh() {
  using BasePart = std::pair<std::optional<Reg>, uint32_t>;
  Grammar<BasePart> Base =
      alt(mapWith(regFieldOf({0, 1, 2, 3, 4, 6, 7}),
                  [](Reg R) { return BasePart(R, 0); }),
          mapWith(then(bitsG("101"), wordLE()),
                  [](uint32_t D) { return BasePart(std::nullopt, D); }));
  return mapWith(
      cat(scaleField(), cat(sibIndex(), Base)),
      [](const std::pair<Scale, std::pair<std::optional<Reg>, BasePart>> &P) {
        return Operand::mem(makeAddr(P.second.second.first, P.first,
                                     P.second.first, P.second.second.second));
      });
}

/// SIB tail for mod=01/10: all bases allowed, displacement follows.
Grammar<Operand> sibTailDisp(Grammar<uint32_t> DispG) {
  return mapWith(
      cat(scaleField(), cat(sibIndex(), cat(regField(), DispG))),
      [](const std::pair<Scale,
                         std::pair<std::optional<Reg>,
                                   std::pair<Reg, uint32_t>>> &P) {
        return Operand::mem(makeAddr(P.second.second.first, P.first,
                                     P.second.first, P.second.second.second));
      });
}

Grammar<Operand> sibTail0() {
  static const Grammar<Operand> G = sibTail0Fresh();
  return G;
}

/// The rm bits (plus SIB/displacement) for memory operands under a given
/// mod value.
Grammar<Operand> rmBitsFresh(int Mod) {
  switch (Mod) {
  case 0:
    return alt(
        alt(mapWith(regFieldOf({0, 1, 2, 3, 6, 7}),
                    [](Reg R) { return Operand::mem(Addr::base(R)); }),
            then(bitsG("100"), sibTail0())),
        mapWith(then(bitsG("101"), wordLE()),
                [](uint32_t D) { return Operand::mem(Addr::disp(D)); }));
  case 1:
    return alt(mapWith(cat(regFieldOf({0, 1, 2, 3, 5, 6, 7}), imm8sx()),
                       [](const std::pair<Reg, uint32_t> &P) {
                         return Operand::mem(Addr::base(P.first, P.second));
                       }),
               then(bitsG("100"), sibTailDisp(imm8sx())));
  case 2:
    return alt(mapWith(cat(regFieldOf({0, 1, 2, 3, 5, 6, 7}), wordLE()),
                       [](const std::pair<Reg, uint32_t> &P) {
                         return Operand::mem(Addr::base(P.first, P.second));
                       }),
               then(bitsG("100"), sibTailDisp(wordLE())));
  default:
    assert(false && "rmBits handles memory mods only");
    return voidG<Operand>();
  }
}

Grammar<Operand> rmBits(int Mod) {
  static const Grammar<Operand> Cache[3] = {rmBitsFresh(0), rmBitsFresh(1),
                                            rmBitsFresh(2)};
  assert(Mod >= 0 && Mod <= 2 && "rmBits handles memory mods only");
  return Cache[Mod];
}

/// Full modrm: captures the reg field and the r/m operand (register or
/// memory).
Grammar<std::pair<Reg, Operand>> modrmFull() {
  using P = std::pair<Reg, Operand>;
  static const Grammar<P> G = [] {
    Grammar<P> Out = voidG<P>();
    for (int Mod = 0; Mod <= 2; ++Mod)
      Out = alt(Out, mapWith(then(bitsG(bitString(Mod, 2)),
                                  cat(regField(), rmBits(Mod))),
                             [](const P &X) { return X; }));
    Out = alt(Out, mapWith(then(bitsG("11"), cat(regField(), regField())),
                           [](const std::pair<Reg, Reg> &X) {
                             return P(X.first, Operand::reg(X.second));
                           }));
    return Out;
  }();
  return G;
}

/// ModRM with the reg field fixed to an opcode-extension digit (the
/// Intel "/digit" notation); yields the r/m operand. The paper's
/// ext_op_modrm. One shared grammar per (digit, reg/mem-allowed) shape.
Grammar<Operand> modrmExt(uint8_t Digit, bool AllowReg = true,
                          bool AllowMem = true) {
  auto Build = [](uint8_t D, bool WithReg, bool WithMem) {
    std::string Ext = bitString(D, 3);
    Grammar<Operand> Out = voidG<Operand>();
    if (WithMem)
      for (int Mod = 0; Mod <= 2; ++Mod)
        Out = alt(Out, then(bitsG(bitString(Mod, 2)),
                            then(bitsG(Ext), rmBits(Mod))));
    if (WithReg)
      Out = alt(Out, mapWith(then(bitsG("11"), then(bitsG(Ext), regField())),
                             [](Reg R) { return Operand::reg(R); }));
    return Out;
  };
  // Index: digit in the low 3 bits, the two allow flags above.
  static const std::vector<Grammar<Operand>> Cache = [Build] {
    std::vector<Grammar<Operand>> C(32);
    for (uint8_t D = 0; D < 8; ++D)
      for (int WithReg = 0; WithReg <= 1; ++WithReg)
        for (int WithMem = 0; WithMem <= 1; ++WithMem)
          C[(WithReg << 4) | (WithMem << 3) | D] = Build(D, WithReg, WithMem);
    return C;
  }();
  return Cache[(unsigned(AllowReg) << 4) | (unsigned(AllowMem) << 3) | Digit];
}

//===----------------------------------------------------------------------===//
// Instruction builders. Each returns Grammar<Instr>; `Op16` selects the
// 16-bit-immediate variants used under the operand-size override.
//===----------------------------------------------------------------------===//

Instr baseInstr(Opcode Op) {
  Instr I;
  I.Op = Op;
  return I;
}

using Forms = std::vector<NamedGrammar>;

void add(Forms &Out, std::string Name, Grammar<Instr> G) {
  Out.push_back(NamedGrammar{std::move(Name), std::move(G)});
}

/// The eight 00TTT0dw-family ALU instructions (Figure 1's ADD/ADC/AND/...)
/// plus their 80/81/83 immediate-group forms.
void addAluForms(Forms &Out, const char *Name, Opcode Op, uint8_t TTT,
                 bool Op16) {
  std::string T = bitString(TTT, 3);
  std::string N = Name;

  // 00TTT00w /r : op r/m, r
  add(Out, N + ".rm_r",
      mapWith(cat(then(bitsG("00" + T + "00"), anyBit()), modrmFull()),
              [Op](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Op);
                I.W = P.first;
                I.Op1 = P.second.second;
                I.Op2 = Operand::reg(P.second.first);
                return I;
              }));

  // 00TTT01w /r : op r, r/m
  add(Out, N + ".r_rm",
      mapWith(cat(then(bitsG("00" + T + "01"), anyBit()), modrmFull()),
              [Op](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Op);
                I.W = P.first;
                I.Op1 = Operand::reg(P.second.first);
                I.Op2 = P.second.second;
                return I;
              }));

  // 00TTT100 ib : op AL, imm8
  add(Out, N + ".al_i",
      mapWith(then(bitsG("00" + T + "100"), imm8zx()), [Op](uint32_t V) {
        Instr I = baseInstr(Op);
        I.W = false;
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::imm(V);
        return I;
      }));

  // 00TTT101 iv : op eAX, immW
  add(Out, N + ".eax_i",
      mapWith(then(bitsG("00" + T + "101"), immW(Op16)), [Op](uint32_t V) {
        Instr I = baseInstr(Op);
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::imm(V);
        return I;
      }));

  // 80 /TTT ib : op r/m8, imm8
  add(Out, N + ".rm_i8",
      mapWith(cat(then(byteLitG(0x80), modrmExt(TTT)), imm8zx()),
              [Op](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Op);
                I.W = false;
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));

  // 81 /TTT iv : op r/m, immW
  add(Out, N + ".rm_iW",
      mapWith(cat(then(byteLitG(0x81), modrmExt(TTT)), immW(Op16)),
              [Op](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Op);
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));

  // 83 /TTT ib : op r/m, imm8 sign-extended
  add(Out, N + ".rm_i8sx",
      mapWith(cat(then(byteLitG(0x83), modrmExt(TTT)), imm8sx()),
              [Op](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Op);
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
}

/// Shift/rotate group: C0/C1 (imm8), D0/D1 (by 1), D2/D3 (by CL).
void addShiftForms(Forms &Out, const char *Name, Opcode Op, uint8_t Digit) {
  std::string N = Name;
  auto Build = [Op](Operand Rm, Operand Count, bool W) {
    Instr I = baseInstr(Op);
    I.W = W;
    I.Op1 = Rm;
    I.Op2 = Count;
    return I;
  };

  add(Out, N + ".rm_i8",
      mapWith(cat(cat(then(bitsG("1100000"), anyBit()), modrmExt(Digit)),
                  imm8zx()),
              [Build](const std::pair<std::pair<bool, Operand>, uint32_t> &P) {
                return Build(P.first.second, Operand::imm(P.second),
                             P.first.first);
              }));

  add(Out, N + ".rm_1",
      mapWith(cat(then(bitsG("1101000"), anyBit()), modrmExt(Digit)),
              [Build](const std::pair<bool, Operand> &P) {
                return Build(P.second, Operand::imm(1), P.first);
              }));

  add(Out, N + ".rm_cl",
      mapWith(cat(then(bitsG("1101001"), anyBit()), modrmExt(Digit)),
              [Build](const std::pair<bool, Operand> &P) {
                return Build(P.second, Operand::reg(Reg::ECX), P.first);
              }));
}

/// F6/F7 unary group member (/Digit): NOT, NEG, MUL, DIV, IDIV, 1-op IMUL,
/// and TEST's immediate form handled separately.
void addUnaryF7(Forms &Out, const char *Name, Opcode Op, uint8_t Digit) {
  add(Out, std::string(Name) + ".rm",
      mapWith(cat(then(bitsG("1111011"), anyBit()), modrmExt(Digit)),
              [Op](const std::pair<bool, Operand> &P) {
                Instr I = baseInstr(Op);
                I.W = P.first;
                I.Op1 = P.second;
                return I;
              }));
}

/// A single fixed-byte no-operand instruction.
void addSimple(Forms &Out, const char *Name, uint8_t Byte, Opcode Op) {
  add(Out, Name, mapWith(byteLitG(Byte), [Op](Unit) { return baseInstr(Op); }));
}

/// Builds every instruction-form grammar for one operand-size mode.
Forms buildForms(bool Op16) {
  Forms Out;
  Out.reserve(200);

  // --- ALU family ---------------------------------------------------------
  addAluForms(Out, "add", Opcode::ADD, 0, Op16);
  addAluForms(Out, "or", Opcode::OR, 1, Op16);
  addAluForms(Out, "adc", Opcode::ADC, 2, Op16);
  addAluForms(Out, "sbb", Opcode::SBB, 3, Op16);
  addAluForms(Out, "and", Opcode::AND, 4, Op16);
  addAluForms(Out, "sub", Opcode::SUB, 5, Op16);
  addAluForms(Out, "xor", Opcode::XOR, 6, Op16);
  addAluForms(Out, "cmp", Opcode::CMP, 7, Op16);

  // --- MOV ------------------------------------------------------------------
  add(Out, "mov.rm_r",
      mapWith(cat(then(bitsG("1000100"), anyBit()), modrmFull()),
              [](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.W = P.first;
                I.Op1 = P.second.second;
                I.Op2 = Operand::reg(P.second.first);
                return I;
              }));
  add(Out, "mov.r_rm",
      mapWith(cat(then(bitsG("1000101"), anyBit()), modrmFull()),
              [](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.W = P.first;
                I.Op1 = Operand::reg(P.second.first);
                I.Op2 = P.second.second;
                return I;
              }));
  add(Out, "mov.r_i8",
      mapWith(cat(then(bitsG("10110"), regField()), imm8zx()),
              [](const std::pair<Reg, uint32_t> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.W = false;
                I.Op1 = Operand::reg(P.first);
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "mov.r_iW",
      mapWith(cat(then(bitsG("10111"), regField()), immW(Op16)),
              [](const std::pair<Reg, uint32_t> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.Op1 = Operand::reg(P.first);
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "mov.rm_i8",
      mapWith(cat(then(byteLitG(0xC6), modrmExt(0)), imm8zx()),
              [](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.W = false;
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "mov.rm_iW",
      mapWith(cat(then(byteLitG(0xC7), modrmExt(0)), immW(Op16)),
              [](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Opcode::MOV);
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  // moffs forms A0-A3: eAX <-> [disp32].
  add(Out, "mov.al_moffs",
      mapWith(then(byteLitG(0xA0), wordLE()), [](uint32_t D) {
        Instr I = baseInstr(Opcode::MOV);
        I.W = false;
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::mem(Addr::disp(D));
        return I;
      }));
  add(Out, "mov.eax_moffs",
      mapWith(then(byteLitG(0xA1), wordLE()), [](uint32_t D) {
        Instr I = baseInstr(Opcode::MOV);
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::mem(Addr::disp(D));
        return I;
      }));
  add(Out, "mov.moffs_al",
      mapWith(then(byteLitG(0xA2), wordLE()), [](uint32_t D) {
        Instr I = baseInstr(Opcode::MOV);
        I.W = false;
        I.Op1 = Operand::mem(Addr::disp(D));
        I.Op2 = Operand::reg(Reg::EAX);
        return I;
      }));
  add(Out, "mov.moffs_eax",
      mapWith(then(byteLitG(0xA3), wordLE()), [](uint32_t D) {
        Instr I = baseInstr(Opcode::MOV);
        I.Op1 = Operand::mem(Addr::disp(D));
        I.Op2 = Operand::reg(Reg::EAX);
        return I;
      }));

  // MOV to/from segment registers: 8C /r and 8E /r. The sreg is the
  // 3-bit reg field; encoding 6/7 are invalid, so restrict to 0-5.
  {
    auto SregModrm = [](uint8_t OpByte) {
      Grammar<std::pair<uint8_t, Operand>> Out2 =
          voidG<std::pair<uint8_t, Operand>>();
      for (uint8_t S = 0; S < 6; ++S) {
        for (int Mod = 0; Mod <= 2; ++Mod)
          Out2 = alt(
              Out2,
              mapWith(then(byteLitG(OpByte),
                           then(bitsG(bitString(Mod, 2)),
                                then(bitsG(bitString(S, 3)), rmBits(Mod)))),
                      [S](const Operand &O) { return std::make_pair(S, O); }));
        Out2 = alt(Out2, mapWith(then(byteLitG(OpByte),
                                      then(bitsG("11"),
                                           then(bitsG(bitString(S, 3)),
                                                regField()))),
                                 [S](Reg R) {
                                   return std::make_pair(S, Operand::reg(R));
                                 }));
      }
      return Out2;
    };
    add(Out, "movsr.rm_sr",
        mapWith(SregModrm(0x8C), [](const std::pair<uint8_t, Operand> &P) {
          Instr I = baseInstr(Opcode::MOVSR);
          I.Seg = segFromEncoding(P.first);
          I.Op1 = P.second;
          return I;
        }));
    add(Out, "movsr.sr_rm",
        mapWith(SregModrm(0x8E), [](const std::pair<uint8_t, Operand> &P) {
          Instr I = baseInstr(Opcode::MOVSR);
          I.Seg = segFromEncoding(P.first);
          I.Op2 = P.second;
          return I;
        }));
  }

  // --- LEA (memory r/m only) ------------------------------------------------
  {
    Grammar<std::pair<Reg, Operand>> MemModrm =
        voidG<std::pair<Reg, Operand>>();
    for (int Mod = 0; Mod <= 2; ++Mod)
      MemModrm = alt(MemModrm, then(bitsG(bitString(Mod, 2)),
                                    cat(regField(), rmBits(Mod))));
    add(Out, "lea",
        mapWith(then(byteLitG(0x8D), MemModrm),
                [](const std::pair<Reg, Operand> &P) {
                  Instr I = baseInstr(Opcode::LEA);
                  I.Op1 = Operand::reg(P.first);
                  I.Op2 = P.second;
                  return I;
                }));
  }

  // --- INC/DEC ---------------------------------------------------------------
  add(Out, "inc.r",
      mapWith(then(bitsG("01000"), regField()), [](Reg R) {
        Instr I = baseInstr(Opcode::INC);
        I.Op1 = Operand::reg(R);
        return I;
      }));
  add(Out, "dec.r",
      mapWith(then(bitsG("01001"), regField()), [](Reg R) {
        Instr I = baseInstr(Opcode::DEC);
        I.Op1 = Operand::reg(R);
        return I;
      }));
  add(Out, "inc.rm",
      mapWith(cat(then(bitsG("1111111"), anyBit()), modrmExt(0)),
              [](const std::pair<bool, Operand> &P) {
                Instr I = baseInstr(Opcode::INC);
                I.W = P.first;
                I.Op1 = P.second;
                return I;
              }));
  add(Out, "dec.rm",
      mapWith(cat(then(bitsG("1111111"), anyBit()), modrmExt(1)),
              [](const std::pair<bool, Operand> &P) {
                Instr I = baseInstr(Opcode::DEC);
                I.W = P.first;
                I.Op1 = P.second;
                return I;
              }));

  // --- PUSH/POP ---------------------------------------------------------------
  add(Out, "push.r",
      mapWith(then(bitsG("01010"), regField()), [](Reg R) {
        Instr I = baseInstr(Opcode::PUSH);
        I.Op1 = Operand::reg(R);
        return I;
      }));
  add(Out, "pop.r",
      mapWith(then(bitsG("01011"), regField()), [](Reg R) {
        Instr I = baseInstr(Opcode::POP);
        I.Op1 = Operand::reg(R);
        return I;
      }));
  add(Out, "push.i8",
      mapWith(then(byteLitG(0x6A), imm8sx()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::PUSH);
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "push.iW",
      mapWith(then(byteLitG(0x68), immW(Op16)), [](uint32_t V) {
        Instr I = baseInstr(Opcode::PUSH);
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "push.rm",
      mapWith(then(byteLitG(0xFF), modrmExt(6)), [](const Operand &O) {
        Instr I = baseInstr(Opcode::PUSH);
        I.Op1 = O;
        return I;
      }));
  add(Out, "pop.rm",
      mapWith(then(byteLitG(0x8F), modrmExt(0)), [](const Operand &O) {
        Instr I = baseInstr(Opcode::POP);
        I.Op1 = O;
        return I;
      }));

  auto SegInstr = [](Opcode Op, SegReg S) {
    Instr I = baseInstr(Op);
    I.Seg = S;
    return I;
  };
  add(Out, "push.es", mapWith(byteLitG(0x06), [SegInstr](Unit) {
        return SegInstr(Opcode::PUSHSR, SegReg::ES);
      }));
  add(Out, "pop.es", mapWith(byteLitG(0x07), [SegInstr](Unit) {
        return SegInstr(Opcode::POPSR, SegReg::ES);
      }));
  add(Out, "push.cs", mapWith(byteLitG(0x0E), [SegInstr](Unit) {
        return SegInstr(Opcode::PUSHSR, SegReg::CS);
      }));
  add(Out, "push.ss", mapWith(byteLitG(0x16), [SegInstr](Unit) {
        return SegInstr(Opcode::PUSHSR, SegReg::SS);
      }));
  add(Out, "pop.ss", mapWith(byteLitG(0x17), [SegInstr](Unit) {
        return SegInstr(Opcode::POPSR, SegReg::SS);
      }));
  add(Out, "push.ds", mapWith(byteLitG(0x1E), [SegInstr](Unit) {
        return SegInstr(Opcode::PUSHSR, SegReg::DS);
      }));
  add(Out, "pop.ds", mapWith(byteLitG(0x1F), [SegInstr](Unit) {
        return SegInstr(Opcode::POPSR, SegReg::DS);
      }));
  add(Out, "push.fs", mapWith(then(byteLitG(0x0F), byteLitG(0xA0)),
                              [SegInstr](Unit) {
                                return SegInstr(Opcode::PUSHSR, SegReg::FS);
                              }));
  add(Out, "pop.fs", mapWith(then(byteLitG(0x0F), byteLitG(0xA1)),
                             [SegInstr](Unit) {
                               return SegInstr(Opcode::POPSR, SegReg::FS);
                             }));
  add(Out, "push.gs", mapWith(then(byteLitG(0x0F), byteLitG(0xA8)),
                              [SegInstr](Unit) {
                                return SegInstr(Opcode::PUSHSR, SegReg::GS);
                              }));
  add(Out, "pop.gs", mapWith(then(byteLitG(0x0F), byteLitG(0xA9)),
                             [SegInstr](Unit) {
                               return SegInstr(Opcode::POPSR, SegReg::GS);
                             }));

  addSimple(Out, "pusha", 0x60, Opcode::PUSHA);
  addSimple(Out, "popa", 0x61, Opcode::POPA);
  addSimple(Out, "pushf", 0x9C, Opcode::PUSHF);
  addSimple(Out, "popf", 0x9D, Opcode::POPF);

  // --- unary F6/F7 group and TEST --------------------------------------------
  addUnaryF7(Out, "not", Opcode::NOT, 2);
  addUnaryF7(Out, "neg", Opcode::NEG, 3);
  addUnaryF7(Out, "mul", Opcode::MUL, 4);
  addUnaryF7(Out, "imul1", Opcode::IMUL, 5);
  addUnaryF7(Out, "div", Opcode::DIV, 6);
  addUnaryF7(Out, "idiv", Opcode::IDIV, 7);

  // TEST's immediate width depends on the already-parsed w bit, so its
  // immediate forms are written as explicit F6/F7 alternatives.
  add(Out, "test.rm8_i8",
      mapWith(cat(then(byteLitG(0xF6), modrmExt(0)), imm8zx()),
              [](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Opcode::TEST);
                I.W = false;
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "test.rm_iW",
      mapWith(cat(then(byteLitG(0xF7), modrmExt(0)), immW(Op16)),
              [](const std::pair<Operand, uint32_t> &P) {
                Instr I = baseInstr(Opcode::TEST);
                I.Op1 = P.first;
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "test.rm_r",
      mapWith(cat(then(bitsG("1000010"), anyBit()), modrmFull()),
              [](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Opcode::TEST);
                I.W = P.first;
                I.Op1 = P.second.second;
                I.Op2 = Operand::reg(P.second.first);
                return I;
              }));
  add(Out, "test.al_i8",
      mapWith(then(byteLitG(0xA8), imm8zx()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::TEST);
        I.W = false;
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::imm(V);
        return I;
      }));
  add(Out, "test.eax_iW",
      mapWith(then(byteLitG(0xA9), immW(Op16)), [](uint32_t V) {
        Instr I = baseInstr(Opcode::TEST);
        I.Op1 = Operand::reg(Reg::EAX);
        I.Op2 = Operand::imm(V);
        return I;
      }));

  // --- IMUL multi-operand ------------------------------------------------------
  add(Out, "imul.r_rm",
      mapWith(then(byteLitG(0x0F), then(byteLitG(0xAF), modrmFull())),
              [](const std::pair<Reg, Operand> &P) {
                Instr I = baseInstr(Opcode::IMUL);
                I.Op1 = Operand::reg(P.first);
                I.Op2 = P.second;
                return I;
              }));
  add(Out, "imul.r_rm_iW",
      mapWith(cat(then(byteLitG(0x69), modrmFull()), immW(Op16)),
              [](const std::pair<std::pair<Reg, Operand>, uint32_t> &P) {
                Instr I = baseInstr(Opcode::IMUL);
                I.Op1 = Operand::reg(P.first.first);
                I.Op2 = P.first.second;
                I.Op3 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "imul.r_rm_i8",
      mapWith(cat(then(byteLitG(0x6B), modrmFull()), imm8sx()),
              [](const std::pair<std::pair<Reg, Operand>, uint32_t> &P) {
                Instr I = baseInstr(Opcode::IMUL);
                I.Op1 = Operand::reg(P.first.first);
                I.Op2 = P.first.second;
                I.Op3 = Operand::imm(P.second);
                return I;
              }));

  // --- XCHG ---------------------------------------------------------------------
  add(Out, "xchg.rm_r",
      mapWith(cat(then(bitsG("1000011"), anyBit()), modrmFull()),
              [](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Opcode::XCHG);
                I.W = P.first;
                I.Op1 = P.second.second;
                I.Op2 = Operand::reg(P.second.first);
                return I;
              }));
  add(Out, "xchg.eax_r",
      mapWith(then(bitsG("10010"), regFieldOf({1, 2, 3, 4, 5, 6, 7})),
              [](Reg R) {
                Instr I = baseInstr(Opcode::XCHG);
                I.Op1 = Operand::reg(Reg::EAX);
                I.Op2 = Operand::reg(R);
                return I;
              }));
  addSimple(Out, "nop", 0x90, Opcode::NOP);

  // --- shifts/rotates ----------------------------------------------------------
  addShiftForms(Out, "rol", Opcode::ROL, 0);
  addShiftForms(Out, "ror", Opcode::ROR, 1);
  addShiftForms(Out, "rcl", Opcode::RCL, 2);
  addShiftForms(Out, "rcr", Opcode::RCR, 3);
  addShiftForms(Out, "shl", Opcode::SHL, 4);
  addShiftForms(Out, "shr", Opcode::SHR, 5);
  addShiftForms(Out, "sar", Opcode::SAR, 7);

  auto DblShift = [&](const char *Name, Opcode Op, uint8_t ImmByte,
                      uint8_t ClByte) {
    add(Out, std::string(Name) + ".i8",
        mapWith(cat(then(byteLitG(0x0F),
                         then(byteLitG(ImmByte), modrmFull())),
                    imm8zx()),
                [Op](const std::pair<std::pair<Reg, Operand>, uint32_t> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = P.first.second;
                  I.Op2 = Operand::reg(P.first.first);
                  I.Op3 = Operand::imm(P.second);
                  return I;
                }));
    add(Out, std::string(Name) + ".cl",
        mapWith(then(byteLitG(0x0F), then(byteLitG(ClByte), modrmFull())),
                [Op](const std::pair<Reg, Operand> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = P.second;
                  I.Op2 = Operand::reg(P.first);
                  I.Op3 = Operand::reg(Reg::ECX);
                  return I;
                }));
  };
  DblShift("shld", Opcode::SHLD, 0xA4, 0xA5);
  DblShift("shrd", Opcode::SHRD, 0xAC, 0xAD);

  // --- control transfer ---------------------------------------------------------
  // CALL (Figure 2 of the paper).
  add(Out, "call.rel",
      mapWith(then(byteLitG(0xE8), wordLE()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::CALL);
        I.Near = true;
        I.Absolute = false;
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "call.ind",
      mapWith(then(byteLitG(0xFF), modrmExt(2)), [](const Operand &O) {
        Instr I = baseInstr(Opcode::CALL);
        I.Near = true;
        I.Absolute = true;
        I.Op1 = O;
        return I;
      }));
  add(Out, "call.far",
      mapWith(cat(then(byteLitG(0x9A), wordLE()), halfwordLE()),
              [](const std::pair<uint32_t, uint16_t> &P) {
                Instr I = baseInstr(Opcode::CALL);
                I.Near = false;
                I.Absolute = false;
                I.Op1 = Operand::imm(P.first);
                I.Sel = P.second;
                return I;
              }));
  add(Out, "call.far_ind",
      mapWith(then(byteLitG(0xFF), modrmExt(3, /*AllowReg=*/false)),
              [](const Operand &O) {
                Instr I = baseInstr(Opcode::CALL);
                I.Near = false;
                I.Absolute = true;
                I.Op1 = O;
                return I;
              }));

  add(Out, "jmp.rel8",
      mapWith(then(byteLitG(0xEB), imm8sx()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::JMP);
        I.Near = true;
        I.Absolute = false;
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "jmp.rel32",
      mapWith(then(byteLitG(0xE9), wordLE()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::JMP);
        I.Near = true;
        I.Absolute = false;
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "jmp.ind",
      mapWith(then(byteLitG(0xFF), modrmExt(4)), [](const Operand &O) {
        Instr I = baseInstr(Opcode::JMP);
        I.Near = true;
        I.Absolute = true;
        I.Op1 = O;
        return I;
      }));
  add(Out, "jmp.far",
      mapWith(cat(then(byteLitG(0xEA), wordLE()), halfwordLE()),
              [](const std::pair<uint32_t, uint16_t> &P) {
                Instr I = baseInstr(Opcode::JMP);
                I.Near = false;
                I.Absolute = false;
                I.Op1 = Operand::imm(P.first);
                I.Sel = P.second;
                return I;
              }));
  add(Out, "jmp.far_ind",
      mapWith(then(byteLitG(0xFF), modrmExt(5, /*AllowReg=*/false)),
              [](const Operand &O) {
                Instr I = baseInstr(Opcode::JMP);
                I.Near = false;
                I.Absolute = true;
                I.Op1 = O;
                return I;
              }));

  add(Out, "jcc.rel8",
      mapWith(cat(then(bitsG("0111"), field(4)), imm8sx()),
              [](const std::pair<uint32_t, uint32_t> &P) {
                Instr I = baseInstr(Opcode::Jcc);
                I.CC = condFromEncoding(uint8_t(P.first));
                I.Op1 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "jcc.rel32",
      mapWith(cat(then(byteLitG(0x0F), then(bitsG("1000"), field(4))),
                  wordLE()),
              [](const std::pair<uint32_t, uint32_t> &P) {
                Instr I = baseInstr(Opcode::Jcc);
                I.CC = condFromEncoding(uint8_t(P.first));
                I.Op1 = Operand::imm(P.second);
                return I;
              }));

  auto Rel8Branch = [&](const char *Name, uint8_t Byte, Opcode Op) {
    add(Out, Name, mapWith(then(byteLitG(Byte), imm8sx()), [Op](uint32_t V) {
          Instr I = baseInstr(Op);
          I.Op1 = Operand::imm(V);
          return I;
        }));
  };
  Rel8Branch("jecxz", 0xE3, Opcode::JCXZ);
  Rel8Branch("loop", 0xE2, Opcode::LOOP);
  Rel8Branch("loopz", 0xE1, Opcode::LOOPZ);
  Rel8Branch("loopnz", 0xE0, Opcode::LOOPNZ);

  add(Out, "ret", mapWith(byteLitG(0xC3), [](Unit) {
        Instr I = baseInstr(Opcode::RET);
        I.Near = true;
        return I;
      }));
  add(Out, "ret.i16",
      mapWith(then(byteLitG(0xC2), imm16zx()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::RET);
        I.Near = true;
        I.Op1 = Operand::imm(V);
        return I;
      }));
  add(Out, "retf", mapWith(byteLitG(0xCB), [](Unit) {
        Instr I = baseInstr(Opcode::RET);
        I.Near = false;
        return I;
      }));
  add(Out, "retf.i16",
      mapWith(then(byteLitG(0xCA), imm16zx()), [](uint32_t V) {
        Instr I = baseInstr(Opcode::RET);
        I.Near = false;
        I.Op1 = Operand::imm(V);
        return I;
      }));

  // --- conditional data movement -----------------------------------------------
  add(Out, "setcc",
      mapWith(cat(then(byteLitG(0x0F), then(bitsG("1001"), field(4))),
                  modrmExt(0)),
              [](const std::pair<uint32_t, Operand> &P) {
                Instr I = baseInstr(Opcode::SETcc);
                I.W = false;
                I.CC = condFromEncoding(uint8_t(P.first));
                I.Op1 = P.second;
                return I;
              }));
  add(Out, "cmovcc",
      mapWith(cat(then(byteLitG(0x0F), then(bitsG("0100"), field(4))),
                  modrmFull()),
              [](const std::pair<uint32_t, std::pair<Reg, Operand>> &P) {
                Instr I = baseInstr(Opcode::CMOVcc);
                I.CC = condFromEncoding(uint8_t(P.first));
                I.Op1 = Operand::reg(P.second.first);
                I.Op2 = P.second.second;
                return I;
              }));

  // --- widening moves -------------------------------------------------------------
  auto WideMove = [&](const char *Name, uint8_t BaseByte, Opcode Op) {
    add(Out, Name,
        mapWith(cat(then(byteLitG(0x0F),
                         then(bitsG(bitString(BaseByte >> 1, 7)), anyBit())),
                    modrmFull()),
                [Op](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                  Instr I = baseInstr(Op);
                  I.W = P.first; // source width bit
                  I.Op1 = Operand::reg(P.second.first);
                  I.Op2 = P.second.second;
                  return I;
                }));
  };
  WideMove("movzx", 0xB6, Opcode::MOVZX);
  WideMove("movsx", 0xBE, Opcode::MOVSX);

  // --- bit scans / swaps ------------------------------------------------------------
  auto RegRm0F = [&](const char *Name, uint8_t Byte, Opcode Op) {
    add(Out, Name,
        mapWith(then(byteLitG(0x0F), then(byteLitG(Byte), modrmFull())),
                [Op](const std::pair<Reg, Operand> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = Operand::reg(P.first);
                  I.Op2 = P.second;
                  return I;
                }));
  };
  RegRm0F("bsf", 0xBC, Opcode::BSF);
  RegRm0F("bsr", 0xBD, Opcode::BSR);
  add(Out, "bswap",
      mapWith(then(byteLitG(0x0F), then(bitsG("11001"), regField())),
              [](Reg R) {
                Instr I = baseInstr(Opcode::BSWAP);
                I.Op1 = Operand::reg(R);
                return I;
              }));

  // --- bit test family -----------------------------------------------------------
  auto BitTest = [&](const char *Name, Opcode Op, uint8_t RegByte,
                     uint8_t Digit) {
    add(Out, std::string(Name) + ".rm_r",
        mapWith(then(byteLitG(0x0F), then(byteLitG(RegByte), modrmFull())),
                [Op](const std::pair<Reg, Operand> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = P.second;
                  I.Op2 = Operand::reg(P.first);
                  return I;
                }));
    add(Out, std::string(Name) + ".rm_i8",
        mapWith(cat(then(byteLitG(0x0F),
                         then(byteLitG(0xBA), modrmExt(Digit))),
                    imm8zx()),
                [Op](const std::pair<Operand, uint32_t> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = P.first;
                  I.Op2 = Operand::imm(P.second);
                  return I;
                }));
  };
  BitTest("bt", Opcode::BT, 0xA3, 4);
  BitTest("bts", Opcode::BTS, 0xAB, 5);
  BitTest("btr", Opcode::BTR, 0xB3, 6);
  BitTest("btc", Opcode::BTC, 0xBB, 7);

  // --- atomic-style RMW ------------------------------------------------------------
  auto RmR0FW = [&](const char *Name, uint8_t BaseByte, Opcode Op) {
    add(Out, Name,
        mapWith(cat(then(byteLitG(0x0F),
                         then(bitsG(bitString(BaseByte >> 1, 7)), anyBit())),
                    modrmFull()),
                [Op](const std::pair<bool, std::pair<Reg, Operand>> &P) {
                  Instr I = baseInstr(Op);
                  I.W = P.first;
                  I.Op1 = P.second.second;
                  I.Op2 = Operand::reg(P.second.first);
                  return I;
                }));
  };
  RmR0FW("xadd", 0xC0, Opcode::XADD);
  RmR0FW("cmpxchg", 0xB0, Opcode::CMPXCHG);

  // --- string operations --------------------------------------------------------------
  auto StringOp = [&](const char *Name, uint8_t ByteOp, Opcode Op) {
    add(Out, Name,
        mapWith(then(bitsG(bitString(ByteOp >> 1, 7)), anyBit()),
                [Op](bool W) {
                  Instr I = baseInstr(Op);
                  I.W = W;
                  return I;
                }));
  };
  StringOp("movs", 0xA4, Opcode::MOVS);
  StringOp("cmps", 0xA6, Opcode::CMPS);
  StringOp("stos", 0xAA, Opcode::STOS);
  StringOp("lods", 0xAC, Opcode::LODS);
  StringOp("scas", 0xAE, Opcode::SCAS);

  // --- far pointer loads ----------------------------------------------------------------
  auto FarLoad2 = [&](const char *Name, uint8_t Byte, Opcode Op) {
    Grammar<std::pair<Reg, Operand>> MemModrm =
        voidG<std::pair<Reg, Operand>>();
    for (int Mod = 0; Mod <= 2; ++Mod)
      MemModrm = alt(MemModrm, then(bitsG(bitString(Mod, 2)),
                                    cat(regField(), rmBits(Mod))));
    add(Out, Name,
        mapWith(then(byteLitG(Byte), MemModrm),
                [Op](const std::pair<Reg, Operand> &P) {
                  Instr I = baseInstr(Op);
                  I.Op1 = Operand::reg(P.first);
                  I.Op2 = P.second;
                  return I;
                }));
  };
  FarLoad2("les", 0xC4, Opcode::LES);
  FarLoad2("lds", 0xC5, Opcode::LDS);
  {
    auto FarLoad0F = [&](const char *Name, uint8_t Byte, Opcode Op) {
      Grammar<std::pair<Reg, Operand>> MemModrm =
          voidG<std::pair<Reg, Operand>>();
      for (int Mod = 0; Mod <= 2; ++Mod)
        MemModrm = alt(MemModrm, then(bitsG(bitString(Mod, 2)),
                                      cat(regField(), rmBits(Mod))));
      add(Out, Name,
          mapWith(then(byteLitG(0x0F), then(byteLitG(Byte), MemModrm)),
                  [Op](const std::pair<Reg, Operand> &P) {
                    Instr I = baseInstr(Op);
                    I.Op1 = Operand::reg(P.first);
                    I.Op2 = P.second;
                    return I;
                  }));
    };
    FarLoad0F("lss", 0xB2, Opcode::LSS);
    FarLoad0F("lfs", 0xB4, Opcode::LFS);
    FarLoad0F("lgs", 0xB5, Opcode::LGS);
  }

  // --- I/O ports --------------------------------------------------------------------------
  add(Out, "in.i8",
      mapWith(cat(then(bitsG("1110010"), anyBit()), imm8zx()),
              [](const std::pair<bool, uint32_t> &P) {
                Instr I = baseInstr(Opcode::IN);
                I.W = P.first;
                I.Op1 = Operand::reg(Reg::EAX);
                I.Op2 = Operand::imm(P.second);
                return I;
              }));
  add(Out, "in.dx", mapWith(then(bitsG("1110110"), anyBit()), [](bool W) {
        Instr I = baseInstr(Opcode::IN);
        I.W = W;
        I.Op1 = Operand::reg(Reg::EAX);
        return I;
      }));
  add(Out, "out.i8",
      mapWith(cat(then(bitsG("1110011"), anyBit()), imm8zx()),
              [](const std::pair<bool, uint32_t> &P) {
                Instr I = baseInstr(Opcode::OUT);
                I.W = P.first;
                I.Op1 = Operand::imm(P.second);
                I.Op2 = Operand::reg(Reg::EAX);
                return I;
              }));
  add(Out, "out.dx", mapWith(then(bitsG("1110111"), anyBit()), [](bool W) {
        Instr I = baseInstr(Opcode::OUT);
        I.W = W;
        I.Op2 = Operand::reg(Reg::EAX);
        return I;
      }));

  // --- miscellaneous -----------------------------------------------------------------------
  addSimple(Out, "hlt", 0xF4, Opcode::HLT);
  addSimple(Out, "cmc", 0xF5, Opcode::CMC);
  addSimple(Out, "clc", 0xF8, Opcode::CLC);
  addSimple(Out, "stc", 0xF9, Opcode::STC);
  addSimple(Out, "cli", 0xFA, Opcode::CLI);
  addSimple(Out, "sti", 0xFB, Opcode::STI);
  addSimple(Out, "cld", 0xFC, Opcode::CLD);
  addSimple(Out, "std", 0xFD, Opcode::STD);
  addSimple(Out, "lahf", 0x9F, Opcode::LAHF);
  addSimple(Out, "sahf", 0x9E, Opcode::SAHF);
  addSimple(Out, "cwde", 0x98, Opcode::CWDE);
  addSimple(Out, "cdq", 0x99, Opcode::CDQ);
  addSimple(Out, "xlat", 0xD7, Opcode::XLAT);
  addSimple(Out, "leave", 0xC9, Opcode::LEAVE);
  addSimple(Out, "int3", 0xCC, Opcode::INT3);
  addSimple(Out, "into", 0xCE, Opcode::INTO);
  addSimple(Out, "iret", 0xCF, Opcode::IRET);
  addSimple(Out, "aaa", 0x37, Opcode::AAA);
  addSimple(Out, "aas", 0x3F, Opcode::AAS);
  addSimple(Out, "daa", 0x27, Opcode::DAA);
  addSimple(Out, "das", 0x2F, Opcode::DAS);

  auto Imm8Op = [&](const char *Name, uint8_t Byte, Opcode Op) {
    add(Out, Name, mapWith(then(byteLitG(Byte), imm8zx()), [Op](uint32_t V) {
          Instr I = baseInstr(Op);
          I.Op1 = Operand::imm(V);
          return I;
        }));
  };
  Imm8Op("aam", 0xD4, Opcode::AAM);
  Imm8Op("aad", 0xD5, Opcode::AAD);
  Imm8Op("int", 0xCD, Opcode::INT);

  add(Out, "enter",
      mapWith(cat(then(byteLitG(0xC8), imm16zx()), imm8zx()),
              [](const std::pair<uint32_t, uint32_t> &P) {
                Instr I = baseInstr(Opcode::ENTER);
                I.Op1 = Operand::imm(P.first);
                I.Op2 = Operand::imm(P.second);
                return I;
              }));

  return Out;
}

/// Alternation of a form list (balanced fold keeps derivative walks
/// shallow).
Grammar<Instr> unionOf(const Forms &Fs, size_t Lo, size_t Hi) {
  if (Lo >= Hi)
    return voidG<Instr>();
  if (Hi - Lo == 1)
    return Fs[Lo].G;
  size_t Mid = Lo + (Hi - Lo) / 2;
  return alt(unionOf(Fs, Lo, Mid), unionOf(Fs, Mid, Hi));
}

Grammar<Instr> unionOf(const Forms &Fs) { return unionOf(Fs, 0, Fs.size()); }

/// Lock/rep and segment-override prefix grammar (canonical order; the
/// operand-size override is folded into `Full` separately because it
/// selects a different body grammar).
Grammar<Prefix> lockRepSegPrefix() {
  Grammar<Prefix> LockRep =
      alt(alt(mapWith(eps(), [](Unit) { return Prefix{}; }),
              mapWith(byteLitG(0xF0),
                      [](Unit) {
                        Prefix P;
                        P.Lock = true;
                        return P;
                      })),
          alt(mapWith(byteLitG(0xF2),
                      [](Unit) {
                        Prefix P;
                        P.Rep = Prefix::RepKind::RepNe;
                        return P;
                      }),
              mapWith(byteLitG(0xF3), [](Unit) {
                Prefix P;
                P.Rep = Prefix::RepKind::Rep;
                return P;
              })));

  Grammar<std::optional<SegReg>> SegOv = mapWith(
      eps(), [](Unit) { return std::optional<SegReg>{}; });
  static const std::pair<uint8_t, SegReg> SegBytes[] = {
      {0x26, SegReg::ES}, {0x2E, SegReg::CS}, {0x36, SegReg::SS},
      {0x3E, SegReg::DS}, {0x64, SegReg::FS}, {0x65, SegReg::GS}};
  for (auto [B, S] : SegBytes)
    SegOv = alt(SegOv, mapWith(byteLitG(B), [S = S](Unit) {
                  return std::optional<SegReg>(S);
                }));

  return mapWith(cat(LockRep, SegOv),
                 [](const std::pair<Prefix, std::optional<SegReg>> &P) {
                   Prefix Out = P.first;
                   Out.SegOverride = P.second;
                   return Out;
                 });
}

const X86Grammars *buildAll() {
  auto *G = new X86Grammars;
  G->Forms = buildForms(/*Op16=*/false);
  G->Body = unionOf(G->Forms);

  G->Forms16 = buildForms(/*Op16=*/true);
  Grammar<Instr> Body16 = unionOf(G->Forms16);
  Grammar<Instr> Body16Marked =
      mapWith(then(byteLitG(0x66), Body16), [](Instr I) {
        I.Pfx.OpSize = true;
        return I;
      });

  Grammar<Instr> AnyBody = alt(G->Body, Body16Marked);
  G->Full = mapWith(cat(lockRepSegPrefix(), AnyBody),
                    [](const std::pair<Prefix, Instr> &P) {
                      Instr I = P.second;
                      I.Pfx.Lock = P.first.Lock;
                      I.Pfx.Rep = P.first.Rep;
                      I.Pfx.SegOverride = P.first.SegOverride;
                      return I;
                    });
  return G;
}

} // namespace

const X86Grammars &x86::x86Grammars() {
  static const X86Grammars *G = buildAll();
  return *G;
}

Grammar<Instr> x86::formsUnion(const std::vector<std::string> &Names,
                               bool Op16) {
  const X86Grammars &G = x86Grammars();
  const Forms &Pool = Op16 ? G.Forms16 : G.Forms;
  Forms Picked;
  for (const std::string &Name : Names) {
    bool Found = false;
    for (const NamedGrammar &NG : Pool)
      if (NG.Name == Name) {
        Picked.push_back(NG);
        Found = true;
        break;
      }
    assert(Found && "unknown instruction-form name");
    (void)Found;
  }
  return unionOf(Picked);
}

Grammar<Instr> x86::buggyMovBody() {
  // Rebuild the 8C (mov r/m, sreg) form with its low opcode bit flipped to
  // 8D so that it collides with LEA, as in the paper's anecdote.
  Forms Fs = buildForms(/*Op16=*/false);
  for (NamedGrammar &NG : Fs) {
    if (NG.Name != "movsr.rm_sr")
      continue;
    Grammar<std::pair<uint8_t, Operand>> Bad =
        voidG<std::pair<uint8_t, Operand>>();
    for (uint8_t S = 0; S < 6; ++S)
      for (int Mod = 0; Mod <= 2; ++Mod)
        Bad = alt(Bad,
                  mapWith(then(byteLitG(0x8D), // flipped bit: was 0x8C
                               then(bitsG(bitString(Mod, 2)),
                                    then(bitsG(bitString(S, 3)),
                                         rmBits(Mod)))),
                          [S](const Operand &O) {
                            return std::make_pair(S, O);
                          }));
    NG.G = mapWith(Bad, [](const std::pair<uint8_t, Operand> &P) {
      Instr I = baseInstr(Opcode::MOVSR);
      I.Seg = segFromEncoding(P.first);
      I.Op1 = P.second;
      return I;
    });
  }
  return unionOf(Fs);
}
