//===- x86/Encoder.cpp ----------------------------------------*- C++ -*-===//

#include "x86/Encoder.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::x86;

namespace {

/// Accumulates encoded bytes; `Ok` goes false on unencodable shapes.
class ByteWriter {
public:
  std::vector<uint8_t> Bytes;
  bool Ok = true;

  void b(uint8_t V) { Bytes.push_back(V); }
  void imm8(uint32_t V) { b(static_cast<uint8_t>(V)); }
  void imm16(uint32_t V) {
    b(static_cast<uint8_t>(V));
    b(static_cast<uint8_t>(V >> 8));
  }
  void imm32(uint32_t V) {
    imm16(V);
    imm16(V >> 16);
  }
  /// Immediate of the instruction's effective word size.
  void immW(uint32_t V, uint32_t Bits) {
    if (Bits == 8)
      imm8(V);
    else if (Bits == 16)
      imm16(V);
    else
      imm32(V);
  }
  void fail() { Ok = false; }
};

bool fitsInt8(uint32_t V) {
  int32_t S = static_cast<int32_t>(V);
  return S >= -128 && S <= 127;
}

/// Emits modrm (+sib +disp) for register-field \p RegField and r/m
/// operand \p Rm.
void emitModrm(ByteWriter &W, uint8_t RegField, const Operand &Rm) {
  assert(RegField < 8 && "bad reg field");
  if (Rm.isReg()) {
    W.b(static_cast<uint8_t>(0xC0 | (RegField << 3) | encodingOf(Rm.R)));
    return;
  }
  if (!Rm.isMem()) {
    W.fail();
    return;
  }
  const Addr &A = Rm.A;
  if (A.Index && A.Index->second == Reg::ESP) {
    W.fail(); // ESP cannot be an index register
    return;
  }

  auto EmitSib = [&](uint8_t Mod, uint8_t BaseEnc) {
    uint8_t ScaleBits =
        A.Index ? static_cast<uint8_t>(A.Index->first) : uint8_t(0);
    uint8_t IndexEnc = A.Index ? encodingOf(A.Index->second) : uint8_t(4);
    W.b(static_cast<uint8_t>((Mod << 6) | (RegField << 3) | 4));
    W.b(static_cast<uint8_t>((ScaleBits << 6) | (IndexEnc << 3) | BaseEnc));
  };

  if (!A.Base) {
    if (!A.Index) {
      // [disp32]: mod=00 rm=101.
      W.b(static_cast<uint8_t>((RegField << 3) | 5));
      W.imm32(A.Disp);
      return;
    }
    // [index*scale + disp32]: mod=00 SIB with base=101.
    EmitSib(0, 5);
    W.imm32(A.Disp);
    return;
  }

  Reg Base = *A.Base;
  bool NeedSib = A.Index.has_value() || Base == Reg::ESP;
  // mod=00 with base EBP means disp32-no-base, so EBP needs a disp byte.
  uint8_t Mod;
  if (A.Disp == 0 && Base != Reg::EBP)
    Mod = 0;
  else if (fitsInt8(A.Disp))
    Mod = 1;
  else
    Mod = 2;

  if (NeedSib)
    EmitSib(Mod, encodingOf(Base));
  else
    W.b(static_cast<uint8_t>((Mod << 6) | (RegField << 3) |
                             encodingOf(Base)));

  if (Mod == 1)
    W.imm8(A.Disp);
  else if (Mod == 2)
    W.imm32(A.Disp);
}

void emitPrefixes(ByteWriter &W, const Prefix &P) {
  if (P.Lock)
    W.b(0xF0);
  if (P.Rep == Prefix::RepKind::Rep)
    W.b(0xF3);
  else if (P.Rep == Prefix::RepKind::RepNe)
    W.b(0xF2);
  if (P.SegOverride) {
    static const uint8_t SegBytes[] = {0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65};
    W.b(SegBytes[encodingOf(*P.SegOverride)]);
  }
  if (P.OpSize)
    W.b(0x66);
}

/// ALU-family index (the TTT bits of the 00TTT0dw opcodes and the /TTT
/// extension of 80/81/83).
std::optional<uint8_t> aluIndex(Opcode Op) {
  switch (Op) {
  case Opcode::ADD: return 0;
  case Opcode::OR:  return 1;
  case Opcode::ADC: return 2;
  case Opcode::SBB: return 3;
  case Opcode::AND: return 4;
  case Opcode::SUB: return 5;
  case Opcode::XOR: return 6;
  case Opcode::CMP: return 7;
  default: return std::nullopt;
  }
}

/// Shift/rotate-family /digit of C0/C1/D0-D3.
std::optional<uint8_t> shiftIndex(Opcode Op) {
  switch (Op) {
  case Opcode::ROL: return 0;
  case Opcode::ROR: return 1;
  case Opcode::RCL: return 2;
  case Opcode::RCR: return 3;
  case Opcode::SHL: return 4;
  case Opcode::SHR: return 5;
  case Opcode::SAR: return 7;
  default: return std::nullopt;
  }
}

void encodeAlu(ByteWriter &W, const Instr &I, uint8_t TTT) {
  uint32_t Bits = operandBits(I.Pfx, I.W);
  uint8_t Base = static_cast<uint8_t>(TTT << 3);
  const Operand &Dst = I.Op1, &Src = I.Op2;

  if (Src.isImm()) {
    if (I.W && fitsInt8(Src.ImmVal) && Bits != 8) {
      // 83 /TTT ib (sign-extended).
      W.b(0x83);
      emitModrm(W, TTT, Dst);
      W.imm8(Src.ImmVal);
      return;
    }
    if (Dst.isReg() && Dst.R == Reg::EAX) {
      // 04/05 short form: op AL/eAX, imm.
      W.b(static_cast<uint8_t>(Base | 0x04 | (I.W ? 1 : 0)));
      W.immW(Src.ImmVal, Bits);
      return;
    }
    W.b(I.W ? 0x81 : 0x80);
    emitModrm(W, TTT, Dst);
    W.immW(Src.ImmVal, Bits);
    return;
  }
  if (Src.isReg()) {
    // 00/01 /r: op r/m, r.
    W.b(static_cast<uint8_t>(Base | (I.W ? 1 : 0)));
    emitModrm(W, encodingOf(Src.R), Dst);
    return;
  }
  if (Src.isMem() && Dst.isReg()) {
    // 02/03 /r: op r, r/m.
    W.b(static_cast<uint8_t>(Base | 0x02 | (I.W ? 1 : 0)));
    emitModrm(W, encodingOf(Dst.R), Src);
    return;
  }
  W.fail();
}

void encodeMov(ByteWriter &W, const Instr &I) {
  uint32_t Bits = operandBits(I.Pfx, I.W);
  const Operand &Dst = I.Op1, &Src = I.Op2;
  if (Src.isImm()) {
    if (Dst.isReg()) {
      // B0+r / B8+r.
      W.b(static_cast<uint8_t>((I.W ? 0xB8 : 0xB0) + encodingOf(Dst.R)));
      W.immW(Src.ImmVal, Bits);
      return;
    }
    if (Dst.isMem()) {
      W.b(I.W ? 0xC7 : 0xC6);
      emitModrm(W, 0, Dst);
      W.immW(Src.ImmVal, Bits);
      return;
    }
    W.fail();
    return;
  }
  if (Src.isReg()) {
    W.b(I.W ? 0x89 : 0x88);
    emitModrm(W, encodingOf(Src.R), Dst);
    return;
  }
  if (Src.isMem() && Dst.isReg()) {
    W.b(I.W ? 0x8B : 0x8A);
    emitModrm(W, encodingOf(Dst.R), Src);
    return;
  }
  W.fail();
}

void encodeShift(ByteWriter &W, const Instr &I, uint8_t Digit) {
  // Op1 = r/m, Op2 = imm / CL / 1.
  const Operand &Cnt = I.Op2;
  if (Cnt.isImm() && Cnt.ImmVal == 1) {
    W.b(I.W ? 0xD1 : 0xD0);
    emitModrm(W, Digit, I.Op1);
    return;
  }
  if (Cnt.isImm()) {
    W.b(I.W ? 0xC1 : 0xC0);
    emitModrm(W, Digit, I.Op1);
    W.imm8(Cnt.ImmVal);
    return;
  }
  if (Cnt.isReg() && Cnt.R == Reg::ECX) {
    W.b(I.W ? 0xD3 : 0xD2);
    emitModrm(W, Digit, I.Op1);
    return;
  }
  W.fail();
}

void encodeControl(ByteWriter &W, const Instr &I) {
  switch (I.Op) {
  case Opcode::CALL:
    if (I.Near && !I.Absolute && I.Op1.isImm()) {
      W.b(0xE8);
      W.imm32(I.Op1.ImmVal);
      return;
    }
    if (I.Near && I.Absolute) {
      W.b(0xFF);
      emitModrm(W, 2, I.Op1);
      return;
    }
    if (!I.Near && I.Absolute) {
      W.b(0xFF);
      emitModrm(W, 3, I.Op1);
      return;
    }
    if (!I.Near && !I.Absolute && I.Op1.isImm() && I.Sel) {
      W.b(0x9A);
      W.imm32(I.Op1.ImmVal);
      W.imm16(*I.Sel);
      return;
    }
    break;
  case Opcode::JMP:
    if (I.Near && !I.Absolute && I.Op1.isImm()) {
      if (fitsInt8(I.Op1.ImmVal)) {
        W.b(0xEB);
        W.imm8(I.Op1.ImmVal);
      } else {
        W.b(0xE9);
        W.imm32(I.Op1.ImmVal);
      }
      return;
    }
    if (I.Near && I.Absolute) {
      W.b(0xFF);
      emitModrm(W, 4, I.Op1);
      return;
    }
    if (!I.Near && I.Absolute) {
      W.b(0xFF);
      emitModrm(W, 5, I.Op1);
      return;
    }
    if (!I.Near && !I.Absolute && I.Op1.isImm() && I.Sel) {
      W.b(0xEA);
      W.imm32(I.Op1.ImmVal);
      W.imm16(*I.Sel);
      return;
    }
    break;
  case Opcode::Jcc:
    if (I.Op1.isImm()) {
      if (fitsInt8(I.Op1.ImmVal)) {
        W.b(static_cast<uint8_t>(0x70 + encodingOf(I.CC)));
        W.imm8(I.Op1.ImmVal);
      } else {
        W.b(0x0F);
        W.b(static_cast<uint8_t>(0x80 + encodingOf(I.CC)));
        W.imm32(I.Op1.ImmVal);
      }
      return;
    }
    break;
  case Opcode::RET:
    if (I.Near) {
      if (I.Op1.isImm()) {
        W.b(0xC2);
        W.imm16(I.Op1.ImmVal);
      } else {
        W.b(0xC3);
      }
    } else {
      if (I.Op1.isImm()) {
        W.b(0xCA);
        W.imm16(I.Op1.ImmVal);
      } else {
        W.b(0xCB);
      }
    }
    return;
  case Opcode::JCXZ:
    W.b(0xE3);
    W.imm8(I.Op1.ImmVal);
    return;
  case Opcode::LOOP:
    W.b(0xE2);
    W.imm8(I.Op1.ImmVal);
    return;
  case Opcode::LOOPZ:
    W.b(0xE1);
    W.imm8(I.Op1.ImmVal);
    return;
  case Opcode::LOOPNZ:
    W.b(0xE0);
    W.imm8(I.Op1.ImmVal);
    return;
  default:
    break;
  }
  W.fail();
}

void encodeBody(ByteWriter &W, const Instr &I) {
  uint32_t Bits = operandBits(I.Pfx, I.W);

  if (auto TTT = aluIndex(I.Op)) {
    encodeAlu(W, I, *TTT);
    return;
  }
  if (auto Digit = shiftIndex(I.Op)) {
    encodeShift(W, I, *Digit);
    return;
  }

  switch (I.Op) {
  // --- no-operand opcodes -------------------------------------------------
  case Opcode::NOP: W.b(0x90); return;
  case Opcode::HLT: W.b(0xF4); return;
  case Opcode::CMC: W.b(0xF5); return;
  case Opcode::CLC: W.b(0xF8); return;
  case Opcode::STC: W.b(0xF9); return;
  case Opcode::CLI: W.b(0xFA); return;
  case Opcode::STI: W.b(0xFB); return;
  case Opcode::CLD: W.b(0xFC); return;
  case Opcode::STD: W.b(0xFD); return;
  case Opcode::LAHF: W.b(0x9F); return;
  case Opcode::SAHF: W.b(0x9E); return;
  case Opcode::PUSHA: W.b(0x60); return;
  case Opcode::POPA: W.b(0x61); return;
  case Opcode::PUSHF: W.b(0x9C); return;
  case Opcode::POPF: W.b(0x9D); return;
  case Opcode::LEAVE: W.b(0xC9); return;
  case Opcode::CWDE: W.b(0x98); return;
  case Opcode::CDQ: W.b(0x99); return;
  case Opcode::XLAT: W.b(0xD7); return;
  case Opcode::INT3: W.b(0xCC); return;
  case Opcode::INTO: W.b(0xCE); return;
  case Opcode::IRET: W.b(0xCF); return;
  case Opcode::AAA: W.b(0x37); return;
  case Opcode::AAS: W.b(0x3F); return;
  case Opcode::DAA: W.b(0x27); return;
  case Opcode::DAS: W.b(0x2F); return;
  case Opcode::AAM: W.b(0xD4); W.imm8(I.Op1.isImm() ? I.Op1.ImmVal : 10); return;
  case Opcode::AAD: W.b(0xD5); W.imm8(I.Op1.isImm() ? I.Op1.ImmVal : 10); return;
  case Opcode::INT: W.b(0xCD); W.imm8(I.Op1.ImmVal); return;
  case Opcode::ENTER:
    W.b(0xC8);
    W.imm16(I.Op1.ImmVal);
    W.imm8(I.Op2.ImmVal);
    return;

  // --- string operations (W bit selects byte/word form) -------------------
  case Opcode::MOVS: W.b(I.W ? 0xA5 : 0xA4); return;
  case Opcode::CMPS: W.b(I.W ? 0xA7 : 0xA6); return;
  case Opcode::STOS: W.b(I.W ? 0xAB : 0xAA); return;
  case Opcode::LODS: W.b(I.W ? 0xAD : 0xAC); return;
  case Opcode::SCAS: W.b(I.W ? 0xAF : 0xAE); return;

  // --- stack ---------------------------------------------------------------
  case Opcode::PUSH:
    if (I.Op1.isReg() && I.W && !I.Pfx.OpSize) {
      W.b(static_cast<uint8_t>(0x50 + encodingOf(I.Op1.R)));
      return;
    }
    if (I.Op1.isImm()) {
      if (fitsInt8(I.Op1.ImmVal)) {
        W.b(0x6A);
        W.imm8(I.Op1.ImmVal);
      } else {
        W.b(0x68);
        W.immW(I.Op1.ImmVal, Bits);
      }
      return;
    }
    W.b(0xFF);
    emitModrm(W, 6, I.Op1);
    return;
  case Opcode::POP:
    if (I.Op1.isReg() && I.W && !I.Pfx.OpSize) {
      W.b(static_cast<uint8_t>(0x58 + encodingOf(I.Op1.R)));
      return;
    }
    W.b(0x8F);
    emitModrm(W, 0, I.Op1);
    return;
  case Opcode::PUSHSR:
    switch (I.Seg) {
    case SegReg::ES: W.b(0x06); return;
    case SegReg::CS: W.b(0x0E); return;
    case SegReg::SS: W.b(0x16); return;
    case SegReg::DS: W.b(0x1E); return;
    case SegReg::FS: W.b(0x0F); W.b(0xA0); return;
    case SegReg::GS: W.b(0x0F); W.b(0xA8); return;
    }
    break;
  case Opcode::POPSR:
    switch (I.Seg) {
    case SegReg::ES: W.b(0x07); return;
    case SegReg::SS: W.b(0x17); return;
    case SegReg::DS: W.b(0x1F); return;
    case SegReg::FS: W.b(0x0F); W.b(0xA1); return;
    case SegReg::GS: W.b(0x0F); W.b(0xA9); return;
    case SegReg::CS: break; // POP CS does not exist
    }
    break;

  // --- moves ----------------------------------------------------------------
  case Opcode::MOV:
    encodeMov(W, I);
    return;
  case Opcode::MOVSR:
    // Op1 dst, Op2 src; one of them is the segment register I.Seg.
    if (I.Op1.isNone()) {
      // mov sreg, r/m16: 8E /r.
      W.b(0x8E);
      emitModrm(W, encodingOf(I.Seg), I.Op2);
    } else {
      // mov r/m16, sreg: 8C /r.
      W.b(0x8C);
      emitModrm(W, encodingOf(I.Seg), I.Op1);
    }
    return;
  case Opcode::LEA:
    if (!I.Op1.isReg() || !I.Op2.isMem())
      break;
    W.b(0x8D);
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;
  case Opcode::MOVSX:
  case Opcode::MOVZX: {
    if (!I.Op1.isReg())
      break;
    uint8_t Base = I.Op == Opcode::MOVSX ? 0xBE : 0xB6;
    // W here is the *source* width bit: false = r/m8 source.
    W.b(0x0F);
    W.b(static_cast<uint8_t>(Base | (I.W ? 1 : 0)));
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;
  }

  // --- inc/dec/unary --------------------------------------------------------
  case Opcode::INC:
    if (I.Op1.isReg() && I.W && !I.Pfx.OpSize) {
      W.b(static_cast<uint8_t>(0x40 + encodingOf(I.Op1.R)));
      return;
    }
    W.b(I.W ? 0xFF : 0xFE);
    emitModrm(W, 0, I.Op1);
    return;
  case Opcode::DEC:
    if (I.Op1.isReg() && I.W && !I.Pfx.OpSize) {
      W.b(static_cast<uint8_t>(0x48 + encodingOf(I.Op1.R)));
      return;
    }
    W.b(I.W ? 0xFF : 0xFE);
    emitModrm(W, 1, I.Op1);
    return;
  case Opcode::NOT:
    W.b(I.W ? 0xF7 : 0xF6);
    emitModrm(W, 2, I.Op1);
    return;
  case Opcode::NEG:
    W.b(I.W ? 0xF7 : 0xF6);
    emitModrm(W, 3, I.Op1);
    return;
  case Opcode::MUL:
    W.b(I.W ? 0xF7 : 0xF6);
    emitModrm(W, 4, I.Op1);
    return;
  case Opcode::DIV:
    W.b(I.W ? 0xF7 : 0xF6);
    emitModrm(W, 6, I.Op1);
    return;
  case Opcode::IDIV:
    W.b(I.W ? 0xF7 : 0xF6);
    emitModrm(W, 7, I.Op1);
    return;
  case Opcode::IMUL:
    if (I.Op2.isNone()) {
      // One-operand form: F6/F7 /5.
      W.b(I.W ? 0xF7 : 0xF6);
      emitModrm(W, 5, I.Op1);
      return;
    }
    if (!I.Op1.isReg())
      break;
    if (I.Op3.isImm()) {
      if (fitsInt8(I.Op3.ImmVal)) {
        W.b(0x6B);
        emitModrm(W, encodingOf(I.Op1.R), I.Op2);
        W.imm8(I.Op3.ImmVal);
      } else {
        W.b(0x69);
        emitModrm(W, encodingOf(I.Op1.R), I.Op2);
        W.immW(I.Op3.ImmVal, Bits);
      }
      return;
    }
    W.b(0x0F);
    W.b(0xAF);
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;

  // --- test/xchg -------------------------------------------------------------
  case Opcode::TEST:
    if (I.Op2.isImm()) {
      if (I.Op1.isReg() && I.Op1.R == Reg::EAX) {
        W.b(I.W ? 0xA9 : 0xA8);
        W.immW(I.Op2.ImmVal, Bits);
        return;
      }
      W.b(I.W ? 0xF7 : 0xF6);
      emitModrm(W, 0, I.Op1);
      W.immW(I.Op2.ImmVal, Bits);
      return;
    }
    if (I.Op2.isReg()) {
      W.b(I.W ? 0x85 : 0x84);
      emitModrm(W, encodingOf(I.Op2.R), I.Op1);
      return;
    }
    break;
  case Opcode::XCHG:
    if (I.Op1.isReg() && I.Op2.isReg() && I.Op1.R == Reg::EAX && I.W &&
        !I.Pfx.OpSize && I.Op2.R != Reg::EAX) {
      W.b(static_cast<uint8_t>(0x90 + encodingOf(I.Op2.R)));
      return;
    }
    if (I.Op2.isReg()) {
      W.b(I.W ? 0x87 : 0x86);
      emitModrm(W, encodingOf(I.Op2.R), I.Op1);
      return;
    }
    break;

  // --- control transfer -------------------------------------------------------
  case Opcode::CALL:
  case Opcode::JMP:
  case Opcode::Jcc:
  case Opcode::RET:
  case Opcode::JCXZ:
  case Opcode::LOOP:
  case Opcode::LOOPZ:
  case Opcode::LOOPNZ:
    encodeControl(W, I);
    return;

  // --- conditional data ops -----------------------------------------------
  case Opcode::SETcc:
    W.b(0x0F);
    W.b(static_cast<uint8_t>(0x90 + encodingOf(I.CC)));
    emitModrm(W, 0, I.Op1);
    return;
  case Opcode::CMOVcc:
    if (!I.Op1.isReg())
      break;
    W.b(0x0F);
    W.b(static_cast<uint8_t>(0x40 + encodingOf(I.CC)));
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;

  // --- bit operations ---------------------------------------------------------
  case Opcode::BSF:
  case Opcode::BSR:
    if (!I.Op1.isReg())
      break;
    W.b(0x0F);
    W.b(I.Op == Opcode::BSF ? 0xBC : 0xBD);
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;
  case Opcode::BSWAP:
    if (!I.Op1.isReg())
      break;
    W.b(0x0F);
    W.b(static_cast<uint8_t>(0xC8 + encodingOf(I.Op1.R)));
    return;
  case Opcode::BT:
  case Opcode::BTS:
  case Opcode::BTR:
  case Opcode::BTC: {
    uint8_t Digit, RegOp;
    switch (I.Op) {
    case Opcode::BT: Digit = 4; RegOp = 0xA3; break;
    case Opcode::BTS: Digit = 5; RegOp = 0xAB; break;
    case Opcode::BTR: Digit = 6; RegOp = 0xB3; break;
    default: Digit = 7; RegOp = 0xBB; break;
    }
    if (I.Op2.isImm()) {
      W.b(0x0F);
      W.b(0xBA);
      emitModrm(W, Digit, I.Op1);
      W.imm8(I.Op2.ImmVal);
      return;
    }
    if (I.Op2.isReg()) {
      W.b(0x0F);
      W.b(RegOp);
      emitModrm(W, encodingOf(I.Op2.R), I.Op1);
      return;
    }
    break;
  }

  // --- double shifts -----------------------------------------------------------
  case Opcode::SHLD:
  case Opcode::SHRD: {
    if (!I.Op2.isReg())
      break;
    uint8_t Base = I.Op == Opcode::SHLD ? 0xA4 : 0xAC;
    if (I.Op3.isImm()) {
      W.b(0x0F);
      W.b(Base);
      emitModrm(W, encodingOf(I.Op2.R), I.Op1);
      W.imm8(I.Op3.ImmVal);
      return;
    }
    if (I.Op3.isReg() && I.Op3.R == Reg::ECX) {
      W.b(0x0F);
      W.b(static_cast<uint8_t>(Base + 1));
      emitModrm(W, encodingOf(I.Op2.R), I.Op1);
      return;
    }
    break;
  }

  // --- atomic-style RMW ---------------------------------------------------------
  case Opcode::XADD:
    if (!I.Op2.isReg())
      break;
    W.b(0x0F);
    W.b(I.W ? 0xC1 : 0xC0);
    emitModrm(W, encodingOf(I.Op2.R), I.Op1);
    return;
  case Opcode::CMPXCHG:
    if (!I.Op2.isReg())
      break;
    W.b(0x0F);
    W.b(I.W ? 0xB1 : 0xB0);
    emitModrm(W, encodingOf(I.Op2.R), I.Op1);
    return;

  // --- far pointer loads ----------------------------------------------------
  case Opcode::LDS:
  case Opcode::LES:
  case Opcode::LSS:
  case Opcode::LFS:
  case Opcode::LGS: {
    if (!I.Op1.isReg() || !I.Op2.isMem())
      break;
    switch (I.Op) {
    case Opcode::LES: W.b(0xC4); break;
    case Opcode::LDS: W.b(0xC5); break;
    case Opcode::LSS: W.b(0x0F); W.b(0xB2); break;
    case Opcode::LFS: W.b(0x0F); W.b(0xB4); break;
    default: W.b(0x0F); W.b(0xB5); break;
    }
    emitModrm(W, encodingOf(I.Op1.R), I.Op2);
    return;
  }

  // --- I/O ports ----------------------------------------------------------------
  case Opcode::IN:
    if (I.Op2.isImm()) {
      W.b(I.W ? 0xE5 : 0xE4);
      W.imm8(I.Op2.ImmVal);
    } else {
      W.b(I.W ? 0xED : 0xEC);
    }
    return;
  case Opcode::OUT:
    if (I.Op1.isImm()) {
      W.b(I.W ? 0xE7 : 0xE6);
      W.imm8(I.Op1.ImmVal);
    } else {
      W.b(I.W ? 0xEF : 0xEE);
    }
    return;

  default:
    break;
  }
  W.fail();
}

} // namespace

std::optional<std::vector<uint8_t>> x86::encode(const Instr &I) {
  ByteWriter W;
  emitPrefixes(W, I.Pfx);
  encodeBody(W, I);
  if (!W.Ok)
    return std::nullopt;
  return std::move(W.Bytes);
}

std::vector<uint8_t> x86::encodeOrDie(const Instr &I) {
  std::optional<std::vector<uint8_t>> Bytes = encode(I);
  assert(Bytes && "instruction shape has no encoding");
  return std::move(*Bytes);
}
