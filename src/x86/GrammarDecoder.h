//===- x86/GrammarDecoder.h - Derivative-based decoder ---------*- C++ -*-===//
///
/// \file
/// The model's reference decoder: runs the declarative instruction
/// grammar (x86/Grammars.h) over a byte stream by Brzozowski derivatives,
/// exactly as the paper's parsing function does (section 2.2). It is the
/// executable specification; the table-driven FastDecoder is validated
/// against it.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_GRAMMARDECODER_H
#define ROCKSALT_X86_GRAMMARDECODER_H

#include "x86/Instr.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace rocksalt {
namespace x86 {

/// A decoded instruction together with its encoded length in bytes.
struct Decoded {
  Instr I;
  uint8_t Length = 0;

  bool operator==(const Decoded &O) const {
    return Length == O.Length && I == O.I;
  }
};

/// Decodes the instruction starting at \p Data (at most min(Size, 15)
/// bytes are examined). Returns std::nullopt when no prefix of the input
/// is a legal instruction of the modeled subset.
std::optional<Decoded> grammarDecode(const uint8_t *Data, size_t Size);

/// Convenience overload.
std::optional<Decoded> grammarDecode(const std::vector<uint8_t> &Bytes);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_GRAMMARDECODER_H
