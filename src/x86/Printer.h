//===- x86/Printer.h - Instruction pretty printing -------------*- C++ -*-===//
///
/// \file
/// Renders instructions in an Intel-ish syntax for diagnostics, test
/// failure messages, and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_PRINTER_H
#define ROCKSALT_X86_PRINTER_H

#include "x86/Instr.h"

#include <string>

namespace rocksalt {
namespace x86 {

/// Renders an operand, e.g. "eax", "0x20", "[ebx+4*esi+0x10]".
std::string printOperand(const Operand &O);

/// Renders a whole instruction, e.g. "lock add dword [eax], ecx".
std::string printInstr(const Instr &I);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_PRINTER_H
