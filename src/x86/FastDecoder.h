//===- x86/FastDecoder.h - Independent table-driven decoder ----*- C++ -*-===//
///
/// \file
/// A second, hand-written decoder for the same instruction subset as the
/// declarative grammars. It exists for two reasons, both from the paper:
///
///  1. *Validation* (section 2.5): the paper validates its model against
///     real hardware via Pin; lacking hardware, we validate the
///     grammar-derived decoder and this one against each other over
///     grammar-directed fuzz streams — two independently written
///     implementations standing in for "model vs implementation".
///  2. *Performance*: the derivative-based reference decoder is an
///     executable specification, not a production decoder. The simulator
///     and the ncval-style baseline checker use this one.
///
/// It accepts exactly the same byte strings as the grammar (including the
/// canonical prefix order) and produces identical Instr values; the
/// differential test suite enforces this.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_FASTDECODER_H
#define ROCKSALT_X86_FASTDECODER_H

#include "x86/GrammarDecoder.h"
#include "x86/Instr.h"

#include <optional>
#include <vector>

namespace rocksalt {
namespace x86 {

/// Decodes the instruction starting at \p Data (examining at most
/// min(Size, 15) bytes). Returns std::nullopt on illegal or unsupported
/// encodings.
std::optional<Decoded> fastDecode(const uint8_t *Data, size_t Size);

/// Convenience overload.
std::optional<Decoded> fastDecode(const std::vector<uint8_t> &Bytes);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_FASTDECODER_H
