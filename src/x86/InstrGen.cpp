//===- x86/InstrGen.cpp ---------------------------------------*- C++ -*-===//

#include "x86/InstrGen.h"

#include <vector>

using namespace rocksalt;
using namespace rocksalt::x86;

namespace {

Reg randomReg(Rng &R) { return regFromEncoding(uint8_t(R.below(8))); }

Reg randomIndexReg(Rng &R) {
  static const Reg Choices[] = {Reg::EAX, Reg::ECX, Reg::EDX, Reg::EBX,
                                Reg::EBP, Reg::ESI, Reg::EDI};
  return Choices[R.below(7)];
}

uint32_t randomImm(Rng &R) {
  // Mix of small constants, byte-sized, and full-width values so both the
  // imm8 and imm32 encoder paths get exercised.
  switch (R.below(4)) {
  case 0: return static_cast<uint32_t>(R.below(16));
  case 1: return static_cast<uint32_t>(R.next() & 0xFF);
  case 2: return static_cast<uint32_t>(static_cast<int32_t>(
              static_cast<int8_t>(R.next())));
  default: return static_cast<uint32_t>(R.next());
  }
}

Operand randomRm(Rng &R, bool AllowMem) {
  if (!AllowMem || R.flip())
    return Operand::reg(randomReg(R));
  return randomMemOperand(R);
}

} // namespace

Operand x86::randomMemOperand(Rng &R) {
  Addr A;
  switch (R.below(5)) {
  case 0: // [disp32]
    A.Disp = static_cast<uint32_t>(R.next());
    break;
  case 1: // [base]
    A.Base = randomReg(R);
    break;
  case 2: // [base + disp]
    A.Base = randomReg(R);
    A.Disp = randomImm(R);
    break;
  case 3: // [base + scale*index + disp]
    A.Base = randomReg(R);
    A.Index = std::make_pair(static_cast<Scale>(R.below(4)),
                             randomIndexReg(R));
    A.Disp = randomImm(R);
    break;
  default: // [scale*index + disp32]
    A.Index = std::make_pair(static_cast<Scale>(R.below(4)),
                             randomIndexReg(R));
    A.Disp = static_cast<uint32_t>(R.next());
    break;
  }
  return Operand::mem(A);
}

Instr x86::randomInstr(Rng &R, const GenOptions &Opts) {
  Instr I;

  // Optional prefixes (kept rare so most instructions are plain).
  if (Opts.AllowPrefixes) {
    if (R.chance(1, 16))
      I.Pfx.OpSize = true;
    if (Opts.AllowSegmentOps && R.chance(1, 24))
      I.Pfx.SegOverride = segFromEncoding(uint8_t(R.below(6)));
  }

  enum class Family {
    Alu, Mov, MovSr, Lea, IncDec, PushPop, Unary, ImulMulti, Test, Xchg,
    Shift, DblShift, Setcc, Cmovcc, WideMove, BitScan, BitTest, Bswap,
    XaddCmpxchg, StringOp, Simple, Branch, LoopBr, Ret, CallJmpInd,
    CallJmpRel, FarLoad, InOut, IntLike, Enter, AamAad
  };

  std::vector<Family> Fams = {
      Family::Alu,     Family::Alu,     Family::Alu,    Family::Mov,
      Family::Mov,     Family::Lea,     Family::IncDec, Family::PushPop,
      Family::Unary,   Family::ImulMulti, Family::Test, Family::Xchg,
      Family::Shift,   Family::DblShift, Family::Setcc, Family::Cmovcc,
      Family::WideMove, Family::BitScan, Family::BitTest, Family::Bswap,
      Family::XaddCmpxchg, Family::Simple, Family::Enter, Family::AamAad};
  if (Opts.AllowStringOps)
    Fams.push_back(Family::StringOp);
  if (Opts.AllowControlFlow) {
    Fams.insert(Fams.end(), {Family::Branch, Family::LoopBr, Family::Ret,
                             Family::CallJmpInd, Family::CallJmpRel});
  }
  if (Opts.AllowSegmentOps)
    Fams.insert(Fams.end(), {Family::MovSr, Family::FarLoad});
  if (Opts.AllowPrivileged)
    Fams.insert(Fams.end(), {Family::InOut, Family::IntLike});

  switch (Fams[R.below(Fams.size())]) {
  case Family::Alu: {
    static const Opcode Ops[] = {Opcode::ADD, Opcode::OR,  Opcode::ADC,
                                 Opcode::SBB, Opcode::AND, Opcode::SUB,
                                 Opcode::XOR, Opcode::CMP};
    I.Op = Ops[R.below(8)];
    I.W = !R.chance(1, 4);
    switch (R.below(3)) {
    case 0: // rm, r
      I.Op1 = randomRm(R, Opts.MemOperands);
      I.Op2 = Operand::reg(randomReg(R));
      break;
    case 1: // r, rm
      I.Op1 = Operand::reg(randomReg(R));
      I.Op2 = randomRm(R, Opts.MemOperands);
      break;
    default: // rm, imm
      I.Op1 = randomRm(R, Opts.MemOperands);
      I.Op2 = Operand::imm(randomImm(R));
      break;
    }
    break;
  }
  case Family::Mov:
    I.Op = Opcode::MOV;
    I.W = !R.chance(1, 4);
    switch (R.below(3)) {
    case 0:
      I.Op1 = randomRm(R, Opts.MemOperands);
      I.Op2 = Operand::reg(randomReg(R));
      break;
    case 1:
      I.Op1 = Operand::reg(randomReg(R));
      I.Op2 = randomRm(R, Opts.MemOperands);
      break;
    default:
      I.Op1 = randomRm(R, Opts.MemOperands);
      I.Op2 = Operand::imm(randomImm(R));
      break;
    }
    break;
  case Family::MovSr:
    I.Op = Opcode::MOVSR;
    I.Seg = segFromEncoding(uint8_t(R.below(6)));
    if (R.flip() && I.Seg != SegReg::CS)
      I.Op2 = randomRm(R, Opts.MemOperands); // mov sreg, r/m
    else
      I.Op1 = randomRm(R, Opts.MemOperands); // mov r/m, sreg
    break;
  case Family::Lea:
    I.Op = Opcode::LEA;
    I.Op1 = Operand::reg(randomReg(R));
    I.Op2 = randomMemOperand(R);
    break;
  case Family::IncDec:
    I.Op = R.flip() ? Opcode::INC : Opcode::DEC;
    I.W = !R.chance(1, 4);
    I.Op1 = I.W ? Operand::reg(randomReg(R)) : randomRm(R, Opts.MemOperands);
    break;
  case Family::PushPop:
    if (R.flip()) {
      I.Op = Opcode::PUSH;
      switch (R.below(3)) {
      case 0: I.Op1 = Operand::reg(randomReg(R)); break;
      case 1: I.Op1 = Operand::imm(randomImm(R)); break;
      default: I.Op1 = randomRm(R, Opts.MemOperands); break;
      }
    } else {
      I.Op = Opcode::POP;
      I.Op1 = R.flip() ? Operand::reg(randomReg(R))
                       : randomRm(R, Opts.MemOperands);
    }
    break;
  case Family::Unary: {
    static const Opcode Ops[] = {Opcode::NOT, Opcode::NEG, Opcode::MUL,
                                 Opcode::DIV, Opcode::IDIV};
    I.Op = Ops[R.below(5)];
    I.W = !R.chance(1, 4);
    I.Op1 = randomRm(R, Opts.MemOperands);
    break;
  }
  case Family::ImulMulti:
    I.Op = Opcode::IMUL;
    switch (R.below(3)) {
    case 0:
      I.W = !R.chance(1, 4);
      I.Op1 = randomRm(R, Opts.MemOperands);
      break;
    case 1:
      I.Op1 = Operand::reg(randomReg(R));
      I.Op2 = randomRm(R, Opts.MemOperands);
      break;
    default:
      I.Op1 = Operand::reg(randomReg(R));
      I.Op2 = randomRm(R, Opts.MemOperands);
      I.Op3 = Operand::imm(randomImm(R));
      break;
    }
    break;
  case Family::Test:
    I.Op = Opcode::TEST;
    I.W = !R.chance(1, 4);
    I.Op1 = randomRm(R, Opts.MemOperands);
    I.Op2 = R.flip() ? Operand::imm(randomImm(R))
                     : Operand::reg(randomReg(R));
    break;
  case Family::Xchg:
    I.Op = Opcode::XCHG;
    I.W = !R.chance(1, 4);
    I.Op1 = randomRm(R, Opts.MemOperands);
    I.Op2 = Operand::reg(randomReg(R));
    break;
  case Family::Shift: {
    static const Opcode Ops[] = {Opcode::ROL, Opcode::ROR, Opcode::RCL,
                                 Opcode::RCR, Opcode::SHL, Opcode::SHR,
                                 Opcode::SAR};
    I.Op = Ops[R.below(7)];
    I.W = !R.chance(1, 4);
    I.Op1 = randomRm(R, Opts.MemOperands);
    switch (R.below(3)) {
    case 0: I.Op2 = Operand::imm(1); break;
    case 1: I.Op2 = Operand::imm(uint32_t(R.below(32))); break;
    default: I.Op2 = Operand::reg(Reg::ECX); break;
    }
    break;
  }
  case Family::DblShift:
    I.Op = R.flip() ? Opcode::SHLD : Opcode::SHRD;
    I.Op1 = randomRm(R, Opts.MemOperands);
    I.Op2 = Operand::reg(randomReg(R));
    I.Op3 = R.flip() ? Operand::imm(uint32_t(R.below(32)))
                     : Operand::reg(Reg::ECX);
    break;
  case Family::Setcc:
    I.Op = Opcode::SETcc;
    I.W = false;
    I.CC = condFromEncoding(uint8_t(R.below(16)));
    I.Op1 = randomRm(R, Opts.MemOperands);
    break;
  case Family::Cmovcc:
    I.Op = Opcode::CMOVcc;
    I.CC = condFromEncoding(uint8_t(R.below(16)));
    I.Op1 = Operand::reg(randomReg(R));
    I.Op2 = randomRm(R, Opts.MemOperands);
    break;
  case Family::WideMove:
    I.Op = R.flip() ? Opcode::MOVZX : Opcode::MOVSX;
    I.W = R.flip(); // source width
    I.Op1 = Operand::reg(randomReg(R));
    I.Op2 = randomRm(R, Opts.MemOperands);
    break;
  case Family::BitScan:
    I.Op = R.flip() ? Opcode::BSF : Opcode::BSR;
    I.Op1 = Operand::reg(randomReg(R));
    I.Op2 = randomRm(R, Opts.MemOperands);
    break;
  case Family::BitTest: {
    static const Opcode Ops[] = {Opcode::BT, Opcode::BTS, Opcode::BTR,
                                 Opcode::BTC};
    I.Op = Ops[R.below(4)];
    I.Op1 = randomRm(R, Opts.MemOperands);
    I.Op2 = R.flip() ? Operand::imm(uint32_t(R.below(32)))
                     : Operand::reg(randomReg(R));
    break;
  }
  case Family::Bswap:
    I.Op = Opcode::BSWAP;
    I.Op1 = Operand::reg(randomReg(R));
    break;
  case Family::XaddCmpxchg:
    I.Op = R.flip() ? Opcode::XADD : Opcode::CMPXCHG;
    I.W = !R.chance(1, 4);
    I.Op1 = randomRm(R, Opts.MemOperands);
    I.Op2 = Operand::reg(randomReg(R));
    break;
  case Family::StringOp: {
    static const Opcode Ops[] = {Opcode::MOVS, Opcode::CMPS, Opcode::STOS,
                                 Opcode::LODS, Opcode::SCAS};
    I.Op = Ops[R.below(5)];
    I.W = R.flip();
    if (R.chance(1, 3))
      I.Pfx.Rep = R.flip() ? Prefix::RepKind::Rep : Prefix::RepKind::RepNe;
    break;
  }
  case Family::Simple: {
    static const Opcode Ops[] = {Opcode::NOP,  Opcode::CMC,  Opcode::CLC,
                                 Opcode::STC,  Opcode::CLD,  Opcode::STD,
                                 Opcode::LAHF, Opcode::SAHF, Opcode::CWDE,
                                 Opcode::CDQ,  Opcode::XLAT, Opcode::LEAVE,
                                 Opcode::PUSHA, Opcode::POPA, Opcode::PUSHF,
                                 Opcode::POPF, Opcode::AAA,  Opcode::AAS,
                                 Opcode::DAA,  Opcode::DAS};
    I.Op = Ops[R.below(sizeof(Ops) / sizeof(Ops[0]))];
    break;
  }
  case Family::Branch:
    I.Op = Opcode::Jcc;
    I.CC = condFromEncoding(uint8_t(R.below(16)));
    I.Op1 = Operand::imm(randomImm(R));
    break;
  case Family::LoopBr: {
    static const Opcode Ops[] = {Opcode::LOOP, Opcode::LOOPZ, Opcode::LOOPNZ,
                                 Opcode::JCXZ};
    I.Op = Ops[R.below(4)];
    I.Op1 = Operand::imm(static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int8_t>(R.next()))));
    break;
  }
  case Family::Ret:
    I.Op = Opcode::RET;
    I.Near = !R.chance(1, 4);
    if (R.flip())
      I.Op1 = Operand::imm(uint32_t(R.below(0x10000)));
    break;
  case Family::CallJmpRel:
    I.Op = R.flip() ? Opcode::CALL : Opcode::JMP;
    I.Near = true;
    I.Absolute = false;
    I.Op1 = Operand::imm(randomImm(R));
    break;
  case Family::CallJmpInd:
    I.Op = R.flip() ? Opcode::CALL : Opcode::JMP;
    I.Near = true;
    I.Absolute = true;
    I.Op1 = randomRm(R, Opts.MemOperands);
    break;
  case Family::FarLoad: {
    static const Opcode Ops[] = {Opcode::LDS, Opcode::LES, Opcode::LSS,
                                 Opcode::LFS, Opcode::LGS};
    I.Op = Ops[R.below(5)];
    I.Op1 = Operand::reg(randomReg(R));
    I.Op2 = randomMemOperand(R);
    break;
  }
  case Family::InOut:
    if (R.flip()) {
      I.Op = Opcode::IN;
      I.W = R.flip();
      I.Op1 = Operand::reg(Reg::EAX);
      if (R.flip())
        I.Op2 = Operand::imm(uint32_t(R.below(256)));
    } else {
      I.Op = Opcode::OUT;
      I.W = R.flip();
      if (R.flip())
        I.Op1 = Operand::imm(uint32_t(R.below(256)));
      I.Op2 = Operand::reg(Reg::EAX);
    }
    break;
  case Family::IntLike: {
    static const Opcode Ops[] = {Opcode::INT3, Opcode::INTO, Opcode::IRET,
                                 Opcode::HLT,  Opcode::CLI,  Opcode::STI};
    I.Op = Ops[R.below(6)];
    if (R.chance(1, 6)) {
      I.Op = Opcode::INT;
      I.Op1 = Operand::imm(uint32_t(R.below(256)));
    }
    break;
  }
  case Family::Enter:
    I.Op = Opcode::ENTER;
    I.Op1 = Operand::imm(uint32_t(R.below(0x10000)));
    I.Op2 = Operand::imm(uint32_t(R.below(32)));
    break;
  case Family::AamAad:
    I.Op = R.flip() ? Opcode::AAM : Opcode::AAD;
    I.Op1 = Operand::imm(uint32_t(R.range(1, 255)));
    break;
  }

  // Normalize immediates so the value survives the width-dependent
  // encoding (byte-op immediates are 8-bit; under the operand-size
  // override, word immediates are 16-bit unless the sign-extended-imm8
  // form applies).
  auto FitsInt8 = [](uint32_t V) {
    int32_t S = static_cast<int32_t>(V);
    return S >= -128 && S <= 127;
  };
  auto NormWordImm = [&](Operand &O) {
    if (!O.isImm())
      return;
    if (!I.W) {
      O.ImmVal &= 0xFF;
      return;
    }
    if (I.Pfx.OpSize && !FitsInt8(O.ImmVal))
      O.ImmVal &= 0xFFFF;
  };
  switch (I.Op) {
  case Opcode::ADD: case Opcode::OR: case Opcode::ADC: case Opcode::SBB:
  case Opcode::AND: case Opcode::SUB: case Opcode::XOR: case Opcode::CMP:
  case Opcode::MOV: case Opcode::TEST:
    NormWordImm(I.Op2);
    break;
  case Opcode::PUSH:
    if (I.Op1.isImm() && I.Pfx.OpSize && !FitsInt8(I.Op1.ImmVal))
      I.Op1.ImmVal &= 0xFFFF;
    break;
  case Opcode::IMUL:
    if (I.Op3.isImm() && I.Pfx.OpSize && !FitsInt8(I.Op3.ImmVal))
      I.Op3.ImmVal &= 0xFFFF;
    break;
  default:
    break;
  }
  return I;
}
