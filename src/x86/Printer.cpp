//===- x86/Printer.cpp ----------------------------------------*- C++ -*-===//

#include "x86/Printer.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::x86;

static std::string hex(uint32_t V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", V);
  return Buf;
}

std::string x86::printOperand(const Operand &O) {
  switch (O.K) {
  case Operand::Kind::None:
    return "";
  case Operand::Kind::Imm:
    return hex(O.ImmVal);
  case Operand::Kind::Reg:
    return regName(O.R);
  case Operand::Kind::Mem: {
    std::string S = "[";
    bool First = true;
    if (O.A.Base) {
      S += regName(*O.A.Base);
      First = false;
    }
    if (O.A.Index) {
      if (!First)
        S += "+";
      unsigned Factor = 1u << static_cast<unsigned>(O.A.Index->first);
      S += std::to_string(Factor);
      S += "*";
      S += regName(O.A.Index->second);
      First = false;
    }
    if (O.A.Disp != 0 || First) {
      if (!First)
        S += "+";
      S += hex(O.A.Disp);
    }
    S += "]";
    return S;
  }
  }
  return "?";
}

std::string x86::printInstr(const Instr &I) {
  std::string S;
  if (I.Pfx.Lock)
    S += "lock ";
  if (I.Pfx.Rep == Prefix::RepKind::Rep)
    S += "rep ";
  else if (I.Pfx.Rep == Prefix::RepKind::RepNe)
    S += "repne ";
  if (I.Pfx.SegOverride) {
    S += seg16Name(*I.Pfx.SegOverride);
    S += ": ";
  }

  S += opcodeName(I.Op);
  if (I.Op == Opcode::Jcc || I.Op == Opcode::SETcc || I.Op == Opcode::CMOVcc)
    S += condName(I.CC);
  if (!I.W &&
      (I.Op == Opcode::MOVS || I.Op == Opcode::CMPS || I.Op == Opcode::STOS ||
       I.Op == Opcode::LODS || I.Op == Opcode::SCAS))
    S += "b";

  if (I.Op == Opcode::MOVSR) {
    if (I.Op1.isNone())
      return S + " " + seg16Name(I.Seg) + ", " + printOperand(I.Op2);
    return S + " " + printOperand(I.Op1) + ", " + seg16Name(I.Seg);
  }
  if (I.Op == Opcode::PUSHSR || I.Op == Opcode::POPSR)
    return S + " " + seg16Name(I.Seg);

  const Operand *Ops[] = {&I.Op1, &I.Op2, &I.Op3};
  bool First = true;
  for (const Operand *O : Ops) {
    if (O->isNone())
      continue;
    S += First ? " " : ", ";
    First = false;
    if (O->isMem())
      S += std::string(I.W ? (I.Pfx.OpSize ? "word " : "dword ") : "byte ");
    S += printOperand(*O);
  }
  if (I.Sel)
    S += " (sel=" + hex(*I.Sel) + ")";
  return S;
}
