//===- x86/Grammars.h - Declarative x86 instruction grammars ---*- C++ -*-===//
///
/// \file
/// The payload of the Decoder DSL (paper section 2.1): bit-level parsing
/// grammars for the x86 integer instruction set, transcribed from the
/// Intel opcode maps. Each instruction form is a Grammar<Instr> whose
/// semantic action builds the abstract syntax; the full decoder grammar
/// is the alternation of all forms, preceded by the prefix grammar.
///
/// Decode conventions (shared with the fast decoder and the encoder):
///  * Operand order is Intel: Op1 = destination.
///  * Sign-extended imm8 fields (83 /n, 6B /r, rel8 branches, PUSH 6A)
///    are stored sign-extended to 32 bits; all other immediates are
///    stored zero-extended.
///  * disp8 in addressing modes is stored sign-extended.
///  * The operand-size override duplicates the instruction-body grammar
///    with 16-bit immediate fields (the `Full` grammar embeds both).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_GRAMMARS_H
#define ROCKSALT_X86_GRAMMARS_H

#include "grammar/Grammar.h"
#include "x86/Instr.h"

#include <string>
#include <vector>

namespace rocksalt {
namespace x86 {

/// One named instruction-form grammar. Names are stable identifiers used
/// by the policy layer (core/Policy) to assemble the checker's DFAs and
/// by the fuzzer to sample encodings.
struct NamedGrammar {
  std::string Name;
  gram::Grammar<Instr> G;
};

/// The assembled grammar set for one operand-size mode.
struct X86Grammars {
  /// Every instruction-form grammar, in definition order. Prefix-free and
  /// pairwise unambiguous (checked by tests, per paper section 4.1).
  std::vector<NamedGrammar> Forms;

  /// The same forms built with 16-bit immediates (operand-size override
  /// in effect); used under the 0x66 prefix and by the policy layer.
  std::vector<NamedGrammar> Forms16;

  /// Alternation of all forms (no prefixes), 32-bit operand size.
  gram::Grammar<Instr> Body;

  /// Prefixes + body, including the operand-size-override variant with
  /// 16-bit immediates. This is the model's top-level x86grammar.
  gram::Grammar<Instr> Full;
};

/// Returns the lazily constructed, cached grammar set.
const X86Grammars &x86Grammars();

/// Builds the alternation of the forms whose names are in \p Names.
/// Asserts that every name exists. Used by the policy layer. \p Op16
/// selects the operand-size-override variants.
gram::Grammar<Instr> formsUnion(const std::vector<std::string> &Names,
                                bool Op16 = false);

/// Builds the instruction-body grammar with a deliberately flipped bit in
/// the `mov r/m16, sreg` (8C /r) encoding, turning it into 8D and making
/// it overlap LEA — the exact bug class the paper's determinism proof
/// caught. Used by the E5 regression test.
gram::Grammar<Instr> buggyMovBody();

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_GRAMMARS_H
