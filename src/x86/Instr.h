//===- x86/Instr.h - x86 abstract syntax -----------------------*- C++ -*-===//
///
/// \file
/// Abstract syntax for the 32-bit x86 (IA-32) integer subset the paper
/// models (Figure 1): registers, segment registers, condition codes,
/// operands (immediates, registers, and the scaled-index addressing
/// modes), prefixes, and instructions. Floating point, MMX/SSE, and
/// system-programming instructions are out of scope, as in the paper.
///
/// Conventions:
///  * Operand order is Intel syntax: Op1 is the destination.
///  * Direct control transfers carry their *relative* displacement as a
///    sign-extended 32-bit immediate in Op1.
///  * The `W` bit distinguishes byte ops (false) from word ops (true);
///    the effective word size is 16 when the operand-size override prefix
///    is present, 32 otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_INSTR_H
#define ROCKSALT_X86_INSTR_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace rocksalt {
namespace x86 {

/// General-purpose registers, in encoding order.
enum class Reg : uint8_t { EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI };
constexpr unsigned NumRegs = 8;

/// Segment registers, in encoding order.
enum class SegReg : uint8_t { ES, CS, SS, DS, FS, GS };
constexpr unsigned NumSegRegs = 6;

/// Condition codes, in encoding order (the low nibble of Jcc/SETcc/CMOVcc
/// opcodes).
enum class Cond : uint8_t {
  O,   ///< overflow
  NO,  ///< not overflow
  B,   ///< below (CF)
  NB,  ///< not below
  E,   ///< equal (ZF)
  NE,  ///< not equal
  BE,  ///< below or equal (CF|ZF)
  NBE, ///< above
  S,   ///< sign (SF)
  NS,  ///< not sign
  P,   ///< parity (PF)
  NP,  ///< not parity
  L,   ///< less (SF!=OF)
  NL,  ///< not less
  LE,  ///< less or equal
  NLE  ///< greater
};
constexpr unsigned NumConds = 16;

/// Index scale factors; the enumerator value is log2 of the factor,
/// matching the SIB encoding.
enum class Scale : uint8_t { S1 = 0, S2 = 1, S4 = 2, S8 = 3 };

/// An effective address: disp + base + scale*index.
struct Addr {
  uint32_t Disp = 0;
  std::optional<Reg> Base;
  std::optional<std::pair<Scale, Reg>> Index; ///< index is never ESP

  bool operator==(const Addr &O) const {
    return Disp == O.Disp && Base == O.Base && Index == O.Index;
  }

  static Addr disp(uint32_t D) { return Addr{D, std::nullopt, std::nullopt}; }
  static Addr base(Reg B, uint32_t D = 0) {
    return Addr{D, B, std::nullopt};
  }
  static Addr baseIndex(Reg B, Reg I, Scale S = Scale::S1, uint32_t D = 0) {
    return Addr{D, B, std::make_pair(S, I)};
  }
  static Addr indexOnly(Reg I, Scale S, uint32_t D = 0) {
    return Addr{D, std::nullopt, std::make_pair(S, I)};
  }
};

/// An instruction operand.
struct Operand {
  enum class Kind : uint8_t { None, Imm, Reg, Mem };
  Kind K = Kind::None;
  uint32_t ImmVal = 0;
  x86::Reg R = x86::Reg::EAX;
  Addr A;

  bool operator==(const Operand &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::None:
      return true;
    case Kind::Imm:
      return ImmVal == O.ImmVal;
    case Kind::Reg:
      return R == O.R;
    case Kind::Mem:
      return A == O.A;
    }
    return false;
  }

  bool isNone() const { return K == Kind::None; }
  bool isImm() const { return K == Kind::Imm; }
  bool isReg() const { return K == Kind::Reg; }
  bool isMem() const { return K == Kind::Mem; }

  static Operand none() { return Operand{}; }
  static Operand imm(uint32_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.ImmVal = V;
    return O;
  }
  static Operand reg(x86::Reg R) {
    Operand O;
    O.K = Kind::Reg;
    O.R = R;
    return O;
  }
  static Operand mem(Addr A) {
    Operand O;
    O.K = Kind::Mem;
    O.A = A;
    return O;
  }
};

/// Instruction prefixes (the paper's prefix record).
struct Prefix {
  enum class RepKind : uint8_t { None, Rep, RepNe };
  bool Lock = false;                   ///< F0
  RepKind Rep = RepKind::None;         ///< F3 / F2
  std::optional<SegReg> SegOverride;   ///< 26/2E/36/3E/64/65
  bool OpSize = false;                 ///< 66: 16-bit operand size

  bool operator==(const Prefix &O) const {
    return Lock == O.Lock && Rep == O.Rep && SegOverride == O.SegOverride &&
           OpSize == O.OpSize;
  }
  bool any() const {
    return Lock || Rep != RepKind::None || SegOverride || OpSize;
  }
};

/// Instruction mnemonics. Each enumerator covers all encodings of one
/// instruction (the paper counts the fourteen opcode forms of ADC as one
/// instruction); cc-parameterized families (Jcc, SETcc, CMOVcc) carry
/// their condition in Instr::CC.
enum class Opcode : uint8_t {
  AAA, AAD, AAM, AAS, ADC, ADD, AND,
  BSF, BSR, BSWAP, BT, BTC, BTR, BTS,
  CALL, CDQ, CLC, CLD, CLI, CMC, CMOVcc, CMP, CMPS, CMPXCHG, CWDE,
  DAA, DAS, DEC, DIV,
  ENTER, HLT,
  IDIV, IMUL, IN, INC, INT3, INT, INTO, IRET,
  Jcc, JCXZ, JMP,
  LAHF, LDS, LEA, LEAVE, LES, LFS, LGS, LSS, LODS,
  LOOP, LOOPNZ, LOOPZ,
  MOV, MOVSR, MOVS, MOVSX, MOVZX, MUL,
  NEG, NOP, NOT,
  OR, OUT,
  POP, POPA, POPF, POPSR, PUSH, PUSHA, PUSHF, PUSHSR,
  RCL, RCR, RET, ROL, ROR,
  SAHF, SAR, SBB, SCAS, SETcc, SHL, SHLD, SHR, SHRD,
  STC, STD, STI, STOS, SUB,
  TEST,
  XADD, XCHG, XLAT, XOR
};

/// A decoded instruction. See the file comment for field conventions.
struct Instr {
  Prefix Pfx;
  Opcode Op = Opcode::NOP;
  bool W = true;            ///< word (16/32) vs byte operation
  Cond CC = Cond::O;        ///< for Jcc/SETcc/CMOVcc
  Operand Op1, Op2, Op3;
  /// CALL/JMP shape, mirroring the paper's CALL(near, abs, op, sel):
  bool Near = true;         ///< near vs far transfer
  bool Absolute = false;    ///< indirect (through reg/mem) vs pc-relative
  std::optional<uint16_t> Sel; ///< far-pointer segment selector
  SegReg Seg = SegReg::DS;  ///< segment for MOVSR/PUSHSR/POPSR

  bool operator==(const Instr &O) const {
    return Pfx == O.Pfx && Op == O.Op && W == O.W && CC == O.CC &&
           Op1 == O.Op1 && Op2 == O.Op2 && Op3 == O.Op3 && Near == O.Near &&
           Absolute == O.Absolute && Sel == O.Sel && Seg == O.Seg;
  }
};

//===----------------------------------------------------------------------===//
// Small helpers shared by the encoder, decoders, and semantics.
//===----------------------------------------------------------------------===//

/// Encoding number of a GPR / segment register / condition.
inline uint8_t encodingOf(Reg R) { return static_cast<uint8_t>(R); }
inline uint8_t encodingOf(SegReg S) { return static_cast<uint8_t>(S); }
inline uint8_t encodingOf(Cond C) { return static_cast<uint8_t>(C); }

Reg regFromEncoding(uint8_t Enc);
SegReg segFromEncoding(uint8_t Enc);
Cond condFromEncoding(uint8_t Enc);

/// Human-readable names (for the printer and diagnostics).
const char *regName(Reg R);
const char *seg16Name(SegReg S);
const char *condName(Cond C);
const char *opcodeName(Opcode Op);

/// Effective operand size in bits given the prefix and the W bit.
inline uint32_t operandBits(const Prefix &P, bool W) {
  if (!W)
    return 8;
  return P.OpSize ? 16 : 32;
}

/// True if \p B is one of the prefix bytes this model recognizes.
bool isPrefixByte(uint8_t B);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_INSTR_H
