//===- x86/InstrGen.h - Random instruction generation ----------*- C++ -*-===//
///
/// \file
/// Generates random, encodable instructions across every form of the
/// modeled subset. This is the abstract-syntax side of the paper's
/// generative fuzzing (section 2.5: "Using our generative grammar, we
/// randomly produce byte sequences that correspond to instructions we
/// have specified"): encoding a random Instr yields exactly such a byte
/// sequence, and decode/execute differential tests consume them.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_X86_INSTRGEN_H
#define ROCKSALT_X86_INSTRGEN_H

#include "support/Oracle.h"
#include "x86/Instr.h"

namespace rocksalt {
namespace x86 {

/// Tuning knobs for generation.
struct GenOptions {
  bool AllowPrefixes = true;     ///< lock/rep/seg-override/66
  bool AllowControlFlow = true;  ///< call/jmp/jcc/ret/loops
  bool AllowPrivileged = true;   ///< in/out/int/iret/hlt/cli/sti
  bool AllowSegmentOps = true;   ///< movsr/pushsr/popsr/lds...
  bool AllowStringOps = true;
  bool MemOperands = true;       ///< permit memory operands
};

/// Returns a random instruction that x86::encode can encode.
Instr randomInstr(Rng &R, const GenOptions &Opts = GenOptions());

/// Returns a random operand of the given shape constraints.
Operand randomMemOperand(Rng &R);

} // namespace x86
} // namespace rocksalt

#endif // ROCKSALT_X86_INSTRGEN_H
