//===- support/Sha256.h - Dependency-free SHA-256 --------------*- C++ -*-===//
///
/// \file
/// Minimal SHA-256 (FIPS 180-4) used to content-address the serialized
/// policy tables (regex/TableIO.h). Implemented locally so the build
/// stays free of external crypto dependencies; this is an integrity
/// check for cache keys and drift detection, not a security boundary —
/// the tables themselves are re-derivable from the grammars at any time.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SUPPORT_SHA256_H
#define ROCKSALT_SUPPORT_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rocksalt {
namespace support {

/// Streaming SHA-256. Typical use:
///   Sha256 H; H.update(ptr, len); auto D = H.digest();
class Sha256 {
public:
  Sha256();

  /// Absorbs \p Len bytes. May be called repeatedly.
  void update(const void *Data, size_t Len);

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards.
  std::array<uint8_t, 32> digest();

  /// One-shot convenience.
  static std::array<uint8_t, 32> hash(const void *Data, size_t Len);

  /// Lowercase hex rendering of a digest.
  static std::string hex(const std::array<uint8_t, 32> &Digest);

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalLen = 0;
  uint8_t Buf[64];
  size_t BufLen = 0;
};

} // namespace support
} // namespace rocksalt

#endif // ROCKSALT_SUPPORT_SHA256_H
