//===- support/Memory.cpp -------------------------------------*- C++ -*-===//

#include "support/Memory.h"

#include <cassert>
#include <cstring>

using namespace rocksalt;

Memory::Memory(const Memory &O) { *this = O; }

Memory &Memory::operator=(const Memory &O) {
  if (this == &O)
    return *this;
  Pages.clear();
  for (const auto &[Key, Page] : O.Pages)
    if (Page)
      Pages.emplace(Key, std::make_unique<Memory::Page>(*Page));
  return *this;
}

static bool pageIsZero(const std::array<uint8_t, Memory::PageSize> &P) {
  for (uint8_t B : P)
    if (B)
      return false;
  return true;
}

bool Memory::operator==(const Memory &O) const {
  auto Covers = [](const Memory &X, const Memory &Y) {
    for (const auto &[Key, Page] : X.Pages) {
      if (!Page)
        continue;
      auto It = Y.Pages.find(Key);
      if (It == Y.Pages.end() || !It->second) {
        if (!pageIsZero(*Page))
          return false;
        continue;
      }
      if (*Page != *It->second)
        return false;
    }
    return true;
  };
  return Covers(*this, O) && Covers(O, *this);
}

Memory::Page &Memory::pageFor(uint32_t Addr) {
  uint32_t Key = Addr >> PageBits;
  auto &Slot = Pages[Key];
  if (!Slot) {
    Slot = std::make_unique<Page>();
    Slot->fill(0);
  }
  return *Slot;
}

const Memory::Page *Memory::pageForRead(uint32_t Addr) const {
  auto It = Pages.find(Addr >> PageBits);
  return It == Pages.end() ? nullptr : It->second.get();
}

uint8_t Memory::load8(uint32_t Addr) const {
  const Page *P = pageForRead(Addr);
  return P ? (*P)[Addr & (PageSize - 1)] : 0;
}

void Memory::store8(uint32_t Addr, uint8_t Value) {
  pageFor(Addr)[Addr & (PageSize - 1)] = Value;
}

uint64_t Memory::load(uint32_t Addr, uint32_t NBytes) const {
  assert(NBytes >= 1 && NBytes <= 8 && "load size out of range");
  uint64_t V = 0;
  for (uint32_t I = 0; I < NBytes; ++I)
    V |= uint64_t(load8(Addr + I)) << (8 * I);
  return V;
}

void Memory::store(uint32_t Addr, uint32_t NBytes, uint64_t Value) {
  assert(NBytes >= 1 && NBytes <= 8 && "store size out of range");
  for (uint32_t I = 0; I < NBytes; ++I)
    store8(Addr + I, static_cast<uint8_t>(Value >> (8 * I)));
}

void Memory::storeBytes(uint32_t Addr, const std::vector<uint8_t> &Bytes) {
  for (size_t I = 0; I < Bytes.size(); ++I)
    store8(Addr + static_cast<uint32_t>(I), Bytes[I]);
}

std::vector<uint8_t> Memory::loadBytes(uint32_t Addr, uint32_t Len) const {
  std::vector<uint8_t> Out(Len);
  for (uint32_t I = 0; I < Len; ++I)
    Out[I] = load8(Addr + I);
  return Out;
}
