//===- support/Memory.h - Paged sparse byte memory -------------*- C++ -*-===//
///
/// \file
/// A sparse, paged model of the 32-bit byte-addressed memory the paper's
/// RTL machine state carries ("a finite map from addresses to bytes",
/// section 2.3). Pages are allocated on first touch; unwritten bytes read
/// as zero.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SUPPORT_MEMORY_H
#define ROCKSALT_SUPPORT_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rocksalt {

/// Sparse byte-addressable memory over the full 32-bit address space.
class Memory {
public:
  static constexpr uint32_t PageBits = 12;
  static constexpr uint32_t PageSize = 1u << PageBits;

private:
  using Page = std::array<uint8_t, PageSize>;
  std::unordered_map<uint32_t, std::unique_ptr<Page>> Pages;

  Page &pageFor(uint32_t Addr);
  const Page *pageForRead(uint32_t Addr) const;

public:
  Memory() = default;
  Memory(const Memory &O);
  Memory &operator=(const Memory &O);
  Memory(Memory &&) = default;
  Memory &operator=(Memory &&) = default;

  /// Content equality (absent pages compare equal to all-zero pages).
  bool operator==(const Memory &O) const;

  uint8_t load8(uint32_t Addr) const;
  void store8(uint32_t Addr, uint8_t Value);

  /// Loads \p NBytes (1..8) little-endian starting at \p Addr, wrapping
  /// modulo 2^32.
  uint64_t load(uint32_t Addr, uint32_t NBytes) const;

  /// Stores the low \p NBytes of \p Value little-endian at \p Addr.
  void store(uint32_t Addr, uint32_t NBytes, uint64_t Value);

  /// Copies \p Bytes into memory starting at \p Addr.
  void storeBytes(uint32_t Addr, const std::vector<uint8_t> &Bytes);

  /// Reads \p Len bytes starting at \p Addr.
  std::vector<uint8_t> loadBytes(uint32_t Addr, uint32_t Len) const;

  /// Number of resident pages (for tests and diagnostics).
  size_t residentPages() const { return Pages.size(); }

  void clear() { Pages.clear(); }
};

} // namespace rocksalt

#endif // ROCKSALT_SUPPORT_MEMORY_H
