//===- support/Oracle.h - Non-determinism oracle & RNG ---------*- C++ -*-===//
///
/// \file
/// The RTL machine state carries "a stream of bits that serves as an
/// oracle" for the choose operation (paper section 2.4); this is the
/// standard trick for turning a non-deterministic step relation into a
/// function. We realize the stream with a deterministic xorshift64*
/// generator seeded explicitly, so runs are reproducible.
///
/// The same generator doubles as the project's general-purpose PRNG for
/// fuzzing and workload generation (Rng).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SUPPORT_ORACLE_H
#define ROCKSALT_SUPPORT_ORACLE_H

#include "support/Bitvec.h"

#include <cstdint>

namespace rocksalt {

/// Deterministic pseudo-random source (xorshift64*).
class Rng {
  uint64_t State;

public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed ? Seed : 1) {}

  uint64_t next();

  /// Uniform in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound);

  /// Uniform in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi);

  bool flip() { return next() & 1; }

  /// True with probability Num/Den.
  bool chance(uint32_t Num, uint32_t Den) { return below(Den) < Num; }
};

/// The oracle bit stream consumed by the RTL `choose` operation.
class Oracle {
  Rng Source;
  uint64_t BitsConsumed = 0;

public:
  explicit Oracle(uint64_t Seed = 42) : Source(Seed) {}

  /// Pulls \p Width fresh bits from the stream.
  Bitvec choose(uint32_t Width);

  uint64_t bitsConsumed() const { return BitsConsumed; }
};

} // namespace rocksalt

#endif // ROCKSALT_SUPPORT_ORACLE_H
