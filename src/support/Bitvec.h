//===- support/Bitvec.h - Width-indexed bit-vectors ------------*- C++ -*-===//
//
// Part of RockSalt-C++, a reproduction of "RockSalt: Better, Faster,
// Stronger SFI for the x86" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Width-indexed bit-vector values in the style of the CompCert integer
/// library the paper's RTL interpreter builds on (section 2.4). A Bitvec
/// carries its width (1..64 bits) at runtime; all arithmetic is performed
/// modulo 2^width. Operations assert width agreement, mirroring the
/// dependent typing the Coq development gets statically.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_SUPPORT_BITVEC_H
#define ROCKSALT_SUPPORT_BITVEC_H

#include <cassert>
#include <cstdint>
#include <string>

namespace rocksalt {

/// A bit-vector of 1 to 64 bits, stored zero-extended in a uint64_t.
class Bitvec {
  uint32_t Width = 1;
  uint64_t Bits = 0;

  static uint64_t maskFor(uint32_t W) {
    assert(W >= 1 && W <= 64 && "Bitvec width out of range");
    return W == 64 ? ~uint64_t(0) : ((uint64_t(1) << W) - 1);
  }

public:
  Bitvec() = default;

  /// Builds a bit-vector of width \p W holding \p V modulo 2^W.
  Bitvec(uint32_t W, uint64_t V) : Width(W), Bits(V & maskFor(W)) {}

  static Bitvec zero(uint32_t W) { return Bitvec(W, 0); }
  static Bitvec one(uint32_t W) { return Bitvec(W, 1); }
  static Bitvec ones(uint32_t W) { return Bitvec(W, ~uint64_t(0)); }

  /// Builds from a signed value (two's complement representation).
  static Bitvec fromSigned(uint32_t W, int64_t V) {
    return Bitvec(W, static_cast<uint64_t>(V));
  }

  uint32_t width() const { return Width; }
  uint64_t bits() const { return Bits; }

  /// Interprets the value as a signed two's complement integer.
  int64_t toSigned() const {
    if (Width == 64)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = uint64_t(1) << (Width - 1);
    if (Bits & SignBit)
      return static_cast<int64_t>(Bits | ~maskFor(Width));
    return static_cast<int64_t>(Bits);
  }

  bool isZero() const { return Bits == 0; }
  bool msb() const { return (Bits >> (Width - 1)) & 1; }
  bool lsb() const { return Bits & 1; }

  /// Returns bit \p I (0 = least significant).
  bool bit(uint32_t I) const {
    assert(I < Width && "bit index out of range");
    return (Bits >> I) & 1;
  }

  //===--------------------------------------------------------------------===//
  // Modular arithmetic. All binary operations require equal widths.
  //===--------------------------------------------------------------------===//

  Bitvec add(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in add");
    return Bitvec(Width, Bits + B.Bits);
  }
  Bitvec sub(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in sub");
    return Bitvec(Width, Bits - B.Bits);
  }
  Bitvec mul(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in mul");
    return Bitvec(Width, Bits * B.Bits);
  }

  /// Unsigned division; division by zero yields all-ones (the RTL layer is
  /// responsible for signalling the #DE fault before calling this).
  Bitvec divu(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in divu");
    if (B.Bits == 0)
      return ones(Width);
    return Bitvec(Width, Bits / B.Bits);
  }
  Bitvec modu(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in modu");
    if (B.Bits == 0)
      return *this;
    return Bitvec(Width, Bits % B.Bits);
  }

  /// Signed division, truncating toward zero (x86 IDIV semantics).
  Bitvec divs(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in divs");
    int64_t D = B.toSigned();
    if (D == 0)
      return ones(Width);
    int64_t N = toSigned();
    if (N == INT64_MIN && D == -1)
      return fromSigned(Width, N); // avoid UB; value wraps
    return fromSigned(Width, N / D);
  }
  Bitvec mods(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in mods");
    int64_t D = B.toSigned();
    if (D == 0)
      return *this;
    int64_t N = toSigned();
    if (N == INT64_MIN && D == -1)
      return zero(Width);
    return fromSigned(Width, N % D);
  }

  Bitvec neg() const { return Bitvec(Width, ~Bits + 1); }

  //===--------------------------------------------------------------------===//
  // Bitwise logic.
  //===--------------------------------------------------------------------===//

  Bitvec logand(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in and");
    return Bitvec(Width, Bits & B.Bits);
  }
  Bitvec logor(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in or");
    return Bitvec(Width, Bits | B.Bits);
  }
  Bitvec logxor(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in xor");
    return Bitvec(Width, Bits ^ B.Bits);
  }
  Bitvec lognot() const { return Bitvec(Width, ~Bits); }

  //===--------------------------------------------------------------------===//
  // Shifts and rotates. The shift amount is taken modulo the width for
  // rotates and saturates (produces 0) for out-of-range logical shifts,
  // matching the RTL semantics (the x86 layer masks counts to 5 bits
  // itself, as the hardware does).
  //===--------------------------------------------------------------------===//

  Bitvec shl(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in shl");
    if (B.Bits >= Width)
      return zero(Width);
    return Bitvec(Width, Bits << B.Bits);
  }
  Bitvec shru(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in shru");
    if (B.Bits >= Width)
      return zero(Width);
    return Bitvec(Width, Bits >> B.Bits);
  }
  Bitvec shrs(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in shrs");
    uint64_t Amt = B.Bits >= Width ? Width - 1 : B.Bits;
    return fromSigned(Width, toSigned() >> Amt);
  }
  Bitvec rol(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in rol");
    uint64_t Amt = B.Bits % Width;
    if (Amt == 0)
      return *this;
    return Bitvec(Width, (Bits << Amt) | (Bits >> (Width - Amt)));
  }
  Bitvec ror(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in ror");
    uint64_t Amt = B.Bits % Width;
    if (Amt == 0)
      return *this;
    return Bitvec(Width, (Bits >> Amt) | (Bits << (Width - Amt)));
  }

  //===--------------------------------------------------------------------===//
  // Comparisons (1-bit results in the RTL layer; bool here).
  //===--------------------------------------------------------------------===//

  bool eq(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in eq");
    return Bits == B.Bits;
  }
  bool ltu(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in ltu");
    return Bits < B.Bits;
  }
  bool lts(const Bitvec &B) const {
    assert(Width == B.Width && "width mismatch in lts");
    return toSigned() < B.toSigned();
  }

  //===--------------------------------------------------------------------===//
  // Width changes.
  //===--------------------------------------------------------------------===//

  /// Zero-extends or truncates to width \p W.
  Bitvec zext(uint32_t W) const { return Bitvec(W, Bits); }

  /// Sign-extends (or truncates) to width \p W.
  Bitvec sext(uint32_t W) const {
    return Bitvec(W, static_cast<uint64_t>(toSigned()));
  }

  /// Concatenates \p Lo below this value: result = this ## Lo.
  Bitvec concat(const Bitvec &Lo) const {
    assert(Width + Lo.Width <= 64 && "concat overflows 64 bits");
    return Bitvec(Width + Lo.Width, (Bits << Lo.Width) | Lo.Bits);
  }

  /// Returns true iff an even number of the low 8 bits are set (the x86
  /// parity-flag convention).
  bool parity8() const {
    uint64_t B = Bits & 0xFF;
    B ^= B >> 4;
    B ^= B >> 2;
    B ^= B >> 1;
    return (B & 1) == 0;
  }

  bool operator==(const Bitvec &B) const {
    return Width == B.Width && Bits == B.Bits;
  }
  bool operator!=(const Bitvec &B) const { return !(*this == B); }

  /// Renders as e.g. "0x1f:8" (value:width).
  std::string str() const;
};

} // namespace rocksalt

#endif // ROCKSALT_SUPPORT_BITVEC_H
