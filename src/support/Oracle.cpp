//===- support/Oracle.cpp -------------------------------------*- C++ -*-===//

#include "support/Oracle.h"

#include <cassert>

using namespace rocksalt;

uint64_t Rng::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "below(0) is meaningless");
  return next() % Bound;
}

uint64_t Rng::range(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + below(Hi - Lo + 1);
}

Bitvec Oracle::choose(uint32_t Width) {
  BitsConsumed += Width;
  return Bitvec(Width, Source.next());
}
