//===- support/Bitvec.cpp -------------------------------------*- C++ -*-===//

#include "support/Bitvec.h"

#include <cstdio>

using namespace rocksalt;

std::string Bitvec::str() const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx:%u",
                static_cast<unsigned long long>(Bits), Width);
  return Buf;
}
