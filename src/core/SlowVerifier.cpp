//===- core/SlowVerifier.cpp ----------------------------------*- C++ -*-===//

#include "core/SlowVerifier.h"

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

/// Shortest-prefix regex match by on-line derivatives (no tables).
/// Returns the matched length, or 0 on failure.
uint32_t derivMatch(re::Factory &F, re::Regex R, const uint8_t *Code,
                    uint32_t Pos, uint32_t Size) {
  re::Regex Cur = R;
  uint32_t Off = 0;
  while (Pos + Off < Size) {
    Cur = F.derivByte(Cur, Code[Pos + Off]);
    ++Off;
    if (Cur == F.voidRe())
      return 0;
    if (F.nullable(Cur))
      return Off;
  }
  return 0;
}

/// One Figure-5 chain step at \p Pos against the grammars in \p P.
/// Advances Pos past the match and records Target marks; returns false
/// when no grammar matched or a direct jump escaped the image.
bool slowStep(re::Factory &F, const PolicyGrammars &P, const uint8_t *Code,
              uint32_t &Pos, uint32_t Size, std::vector<uint8_t> &Target) {
  if (uint32_t L = derivMatch(F, P.MaskedJumpRe, Code, Pos, Size)) {
    Pos += L;
    return true;
  }
  if (uint32_t L = derivMatch(F, P.NoControlFlowRe, Code, Pos, Size)) {
    Pos += L;
    return true;
  }
  if (uint32_t L = derivMatch(F, P.DirectJumpRe, Code, Pos, Size)) {
    uint32_t End = Pos + L;
    uint8_t B0 = Code[Pos];
    int32_t Disp;
    if (B0 == 0xEB || (B0 >= 0x70 && B0 <= 0x7F))
      Disp = static_cast<int8_t>(Code[End - 1]);
    else
      Disp = static_cast<int32_t>(
          uint32_t(Code[End - 4]) | (uint32_t(Code[End - 3]) << 8) |
          (uint32_t(Code[End - 2]) << 16) | (uint32_t(Code[End - 1]) << 24));
    int64_t Dest = int64_t(End) + Disp;
    if (Dest < 0 || Dest >= int64_t(Size))
      return false;
    Target[static_cast<size_t>(Dest)] = 1;
    Pos = End;
    return true;
  }
  return false;
}

/// The final Figure-5 pass shared by both entry points.
bool finalPass(const std::vector<uint8_t> &Valid,
               const std::vector<uint8_t> &Target, uint32_t Size) {
  for (uint32_t I = 0; I < Size; ++I) {
    if (Target[I] && !Valid[I])
      return false;
    if ((I & (BundleSize - 1)) == 0 && !Valid[I])
      return false;
  }
  return true;
}

} // namespace

bool core::slowVerify(const uint8_t *Code, uint32_t Size,
                      uint64_t *InstrCount) {
  std::vector<uint8_t> Valid(Size, 0);
  std::vector<uint8_t> Target(Size, 0);
  uint64_t Count = 0;

  uint32_t Pos = 0;
  while (Pos < Size) {
    Valid[Pos] = 1;
    ++Count;

    // The theorem-prover shape: every instruction re-derives the whole
    // policy from its declarative description in a fresh environment.
    re::Factory F;
    PolicyGrammars P = buildPolicyGrammars(F);
    if (!slowStep(F, P, Code, Pos, Size, Target)) {
      if (InstrCount)
        *InstrCount = Count;
      return false;
    }
  }

  if (InstrCount)
    *InstrCount = Count;
  return finalPass(Valid, Target, Size);
}

SlowContext::SlowContext() : P(buildPolicyGrammars(F)) {}

bool SlowContext::verify(const uint8_t *Code, uint32_t Size,
                         uint64_t *InstrCount) {
  std::vector<uint8_t> Valid(Size, 0);
  std::vector<uint8_t> Target(Size, 0);
  uint64_t Count = 0;

  uint32_t Pos = 0;
  while (Pos < Size) {
    Valid[Pos] = 1;
    ++Count;
    if (!slowStep(F, P, Code, Pos, Size, Target)) {
      if (InstrCount)
        *InstrCount = Count;
      return false;
    }
  }

  if (InstrCount)
    *InstrCount = Count;
  return finalPass(Valid, Target, Size);
}
