//===- core/Policy.cpp ----------------------------------------*- C++ -*-===//

#include "core/Policy.h"

#include "core/TableRegistry.h"
#include "regex/Algebra.h"
#include "regex/TableIO.h"

#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::core;
using re::Factory;
using re::Regex;

namespace {

/// 3-bit register encoding as a bit string.
std::string reg3(unsigned Enc) {
  std::string S(3, '0');
  for (int I = 0; I < 3; ++I)
    if ((Enc >> (2 - I)) & 1)
      S[I] = '1';
  return S;
}

/// nacl_MASK_p: AND r, $-32 — "1000 0011 11 100 reg" ++ safeMask
/// (paper section 3.2, verbatim transliteration).
Regex naclMaskP(Factory &F, unsigned R) {
  return F.cat(F.byteLit(0x83),
               F.cat(F.bits("11100"), F.cat(F.bits(reg3(R)),
                                            F.byteLit(SafeMaskByte))));
}

/// nacl_JMP_p: JMP *r — "1111 1111 11 100 reg".
Regex naclJmpP(Factory &F, unsigned R) {
  return F.cat(F.byteLit(0xFF), F.cat(F.bits("11100"), F.bits(reg3(R))));
}

/// nacl_CALL_p: CALL *r — "1111 1111 11 010 reg".
Regex naclCallP(Factory &F, unsigned R) {
  return F.cat(F.byteLit(0xFF), F.cat(F.bits("11010"), F.bits(reg3(R))));
}

/// nacljmp_p: mask followed by jump/call through the same register.
Regex nacljmpP(Factory &F, unsigned R) {
  return F.cat(naclMaskP(F, R), F.alt(naclJmpP(F, R), naclCallP(F, R)));
}

/// Every register except ESP (encoding 4), as in the paper.
Regex nacljmpMask(Factory &F) {
  std::vector<Regex> Alts;
  for (unsigned R = 0; R < 8; ++R)
    if (R != 4)
      Alts.push_back(nacljmpP(F, R));
  return F.altN(std::move(Alts));
}

/// String-instruction forms (rep-prefixable).
const std::vector<std::string> &stringFormNames() {
  static const std::vector<std::string> Names = {"movs", "cmps", "stos",
                                                 "lods", "scas"};
  return Names;
}

/// Forms that may carry the lock prefix (memory read-modify-writes; the
/// policy over-approximates by not inspecting the mod bits, which is
/// sound because lock is semantically inert in the model).
const std::vector<std::string> &lockableFormNames() {
  static const std::vector<std::string> Names = {
      "add.rm_r", "add.rm_i8", "add.rm_iW", "add.rm_i8sx",
      "or.rm_r",  "or.rm_i8",  "or.rm_iW",  "or.rm_i8sx",
      "adc.rm_r", "adc.rm_i8", "adc.rm_iW", "adc.rm_i8sx",
      "sbb.rm_r", "sbb.rm_i8", "sbb.rm_iW", "sbb.rm_i8sx",
      "and.rm_r", "and.rm_i8", "and.rm_iW", "and.rm_i8sx",
      "sub.rm_r", "sub.rm_i8", "sub.rm_iW", "sub.rm_i8sx",
      "xor.rm_r", "xor.rm_i8", "xor.rm_iW", "xor.rm_i8sx",
      "inc.rm",   "dec.rm",    "not.rm",    "neg.rm",
      "xchg.rm_r", "xadd",     "cmpxchg",
      "bts.rm_r", "bts.rm_i8", "btr.rm_r",  "btr.rm_i8",
      "btc.rm_r", "btc.rm_i8"};
  return Names;
}

} // namespace

const std::vector<std::string> &core::noControlFlowFormNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    // The eight-op ALU family, all forms.
    for (const char *Op : {"add", "or", "adc", "sbb", "and", "sub", "xor",
                           "cmp"})
      for (const char *Form : {".rm_r", ".r_rm", ".al_i", ".eax_i",
                               ".rm_i8", ".rm_iW", ".rm_i8sx"})
        N.push_back(std::string(Op) + Form);
    // Moves.
    for (const char *Form :
         {"mov.rm_r", "mov.r_rm", "mov.r_i8", "mov.r_iW", "mov.rm_i8",
          "mov.rm_iW", "mov.al_moffs", "mov.eax_moffs", "mov.moffs_al",
          "mov.moffs_eax", "lea"})
      N.push_back(Form);
    // Inc/dec/stack.
    for (const char *Form :
         {"inc.r", "dec.r", "inc.rm", "dec.rm", "push.r", "pop.r",
          "push.i8", "push.iW", "push.rm", "pop.rm", "pusha", "popa",
          "pushf", "popf", "leave"})
      N.push_back(Form);
    // Unary group + test + multiplies.
    for (const char *Form :
         {"not.rm", "neg.rm", "mul.rm", "imul1.rm", "div.rm", "idiv.rm",
          "test.rm8_i8", "test.rm_iW", "test.rm_r", "test.al_i8",
          "test.eax_iW", "imul.r_rm", "imul.r_rm_iW", "imul.r_rm_i8"})
      N.push_back(Form);
    // Exchanges.
    for (const char *Form : {"xchg.rm_r", "xchg.eax_r", "nop", "xadd",
                             "cmpxchg"})
      N.push_back(Form);
    // Shifts and rotates.
    for (const char *Op : {"rol", "ror", "rcl", "rcr", "shl", "shr", "sar"})
      for (const char *Form : {".rm_i8", ".rm_1", ".rm_cl"})
        N.push_back(std::string(Op) + Form);
    for (const char *Form : {"shld.i8", "shld.cl", "shrd.i8", "shrd.cl"})
      N.push_back(Form);
    // Conditional data ops and widening moves.
    for (const char *Form : {"setcc", "cmovcc", "movzx", "movsx"})
      N.push_back(Form);
    // Bit instructions.
    for (const char *Form :
         {"bsf", "bsr", "bswap", "bt.rm_r", "bt.rm_i8", "bts.rm_r",
          "bts.rm_i8", "btr.rm_r", "btr.rm_i8", "btc.rm_r", "btc.rm_i8"})
      N.push_back(Form);
    // String ops (unprefixed forms; rep variants are added separately).
    for (const std::string &S : stringFormNames())
      N.push_back(S);
    // Flags, BCD, conversions, misc. CLI/STI, IN/OUT, INT*, RET, and all
    // segment-register operations are deliberately absent.
    for (const char *Form :
         {"cmc", "clc", "stc", "cld", "std", "lahf", "sahf", "cwde", "cdq",
          "xlat", "hlt", "aaa", "aas", "daa", "das", "aam", "aad"})
      N.push_back(Form);
    return N;
  }();
  return Names;
}

PolicyGrammars core::buildPolicyGrammars(Factory &F) {
  // The policy unions are pure functions of fixed name lists, so they
  // are built once per process; per-factory work is then only the strip
  // (itself memoized per grammar node in F's strip cache).
  static const gram::Grammar<x86::Instr> NCF =
      x86::formsUnion(noControlFlowFormNames());
  static const gram::Grammar<x86::Instr> NCF16 =
      x86::formsUnion(noControlFlowFormNames(), /*Op16=*/true);
  static const gram::Grammar<x86::Instr> Strings =
      x86::formsUnion(stringFormNames());
  static const gram::Grammar<x86::Instr> Lockables =
      x86::formsUnion(lockableFormNames());
  static const gram::Grammar<x86::Instr> Jumps = x86::formsUnion(
      {"jmp.rel8", "jmp.rel32", "jcc.rel8", "jcc.rel32", "call.rel"});

  PolicyGrammars P;
  P.NoControlFlow = NCF;

  // The regex is layered with the allowed prefixes.
  Regex Plain = P.NoControlFlow.strip(F);
  Regex With66 = F.cat(F.byteLit(0x66), NCF16.strip(F));
  Regex Reps = F.cat(F.alt(F.byteLit(0xF3), F.byteLit(0xF2)),
                     Strings.strip(F));
  Regex Locked = F.cat(F.byteLit(0xF0), Lockables.strip(F));
  P.NoControlFlowRe = F.altN({Plain, With66, Reps, Locked});

  P.DirectJumpRe = Jumps.strip(F);

  P.MaskedJumpRe = nacljmpMask(F);
  return P;
}

PolicyTables core::buildPolicyTablesRaw() {
  Factory F;
  PolicyGrammars P = buildPolicyGrammars(F);
  PolicyTables T;
  T.NoControlFlow = re::buildDfa(F, P.NoControlFlowRe);
  T.DirectJump = re::buildDfa(F, P.DirectJumpRe);
  T.MaskedJump = re::buildDfa(F, P.MaskedJumpRe);
  return T;
}

PolicyTables core::buildPolicyTables() {
  PolicyTables T = buildPolicyTablesRaw();
  T.NoControlFlow = re::minimizeDfa(T.NoControlFlow);
  T.DirectJump = re::minimizeDfa(T.DirectJump);
  T.MaskedJump = re::minimizeDfa(T.MaskedJump);
  if (T.NoControlFlow.numStates() != NoControlFlowStates ||
      T.DirectJump.numStates() != DirectJumpStates ||
      T.MaskedJump.numStates() != MaskedJumpStates)
    throw std::logic_error(
        "policy table state counts diverged from the pinned constants in "
        "core/Policy.h — a grammar change altered the minimized tables");
  return T;
}

const PolicyTables &core::policyTables() {
  return *defaultTableEntry().Tables;
}

FusedPolicy core::buildFusedPolicy(const PolicyTables &T) {
  FusedPolicy P;
  P.F = re::fuseDfas({&T.MaskedJump, &T.NoControlFlow, &T.DirectJump});

  const uint8_t *MjRow =
      &P.F.Trans[size_t(P.F.Starts[FusedMaskedJump]) * 256];
  const uint8_t *NcfRow =
      &P.F.Trans[size_t(P.F.Starts[FusedNoControlFlow]) * 256];
  const uint8_t *DjRow =
      &P.F.Trans[size_t(P.F.Starts[FusedDirectJump]) * 256];
  for (uint32_t B = 0; B < 256; ++B) {
    uint8_t MjFl = P.F.Flags[MjRow[B]];
    uint8_t NcfFl = P.F.Flags[NcfRow[B]];
    bool MjDead = (MjFl & re::FusedReject) != 0;
    bool DjDead = P.F.rejects(DjRow[B]);
    // dfaMatch checks reject before accept, so a safe byte's
    // NoControlFlow landing must be a non-rejecting accept.
    bool NcfOneByte = !(NcfFl & re::FusedReject) && (NcfFl & re::FusedAccept);
    P.SafeByte[B] = MjDead && NcfOneByte ? 1 : 0;
    P.MjAliveByte[B] = MjDead ? 0 : 1;
    // Exceptional: the step could resolve as MaskedJump or DirectJump.
    // A safe byte is never exceptional even when DirectJump is alive on
    // it — the one-byte NoControlFlow accept outranks DirectJump in the
    // Figure-5 chain order.
    P.ExcByte[B] = (!MjDead || (!DjDead && !P.SafeByte[B])) ? 1 : 0;
  }

  // Second-byte resolution: among the DirectJump-only exceptional
  // bytes, those whose DirectJump landing state dies on at least one
  // second byte can be re-admitted to the sweep when the actual second
  // byte kills the jump (the two-byte opcode prefix 0F: only 0F 8x is
  // a jump). All such bytes must share one landing state to share the
  // one Exc2Dead table; pick the state reached from the most byte
  // values (ties to the smallest id) and leave the rest hard.
  {
    std::array<uint32_t, re::MaxFusedStates> Votes{};
    for (uint32_t B = 0; B < 256; ++B) {
      if (!P.ExcByte[B] || P.MjAliveByte[B])
        continue;
      uint8_t D1 = DjRow[B];
      if (P.F.rejects(D1))
        continue; // exceptional for other reasons; not a DJ-only byte
      // A one-byte DirectJump accept must stay hard: the chain could
      // resolve it as a jump when NoControlFlow fails, and its fused
      // row is a restart row (FusedTables pass 4), not a real one.
      if (P.F.accepts(D1))
        continue;
      bool AnyDead = false;
      for (uint32_t B1 = 0; B1 < 256 && !AnyDead; ++B1)
        AnyDead = P.F.rejects(P.F.step(D1, uint8_t(B1)));
      if (AnyDead)
        ++Votes[D1];
    }
    uint32_t Best = re::MaxFusedStates, BestVotes = 0;
    for (uint32_t S = 0; S < re::MaxFusedStates; ++S)
      if (Votes[S] > BestVotes) {
        Best = S;
        BestVotes = Votes[S];
      }
    if (Best != re::MaxFusedStates) {
      P.Exc2State = Best;
      for (uint32_t B1 = 0; B1 < 256; ++B1)
        P.Exc2Dead[B1] =
            P.F.rejects(P.F.step(uint8_t(Best), uint8_t(B1))) ? 1 : 0;
      for (uint32_t B = 0; B < 256; ++B)
        if (P.ExcByte[B] && !P.MjAliveByte[B] && DjRow[B] == Best)
          P.ExcByte[B] = 2;
    }
  }

  for (uint32_t B = 0; B < 256; ++B) {
    P.SafeCount += P.SafeByte[B];
    P.MjAliveCount += P.MjAliveByte[B];
    P.ExcCount += P.ExcByte[B] != 0;
    P.Exc2Count += P.ExcByte[B] == 2;
  }
  P.RunSkip = P.SafeCount >= RunSkipMinSafeBytes;
  return P;
}

const FusedPolicy &core::fusedPolicyTables() {
  // The fused form lives on the registry entry, built at registration
  // time from the entry's own tables — there is no second cache that
  // could disagree with policyTables() after an adoption.
  return *defaultTableEntry().Fused;
}

bool core::adoptPolicyTables(PolicyTables T, std::string_view Isa,
                             std::string_view PolicySet) {
  TableRegistry::instance().adopt(
      TableKey{std::string(Isa), std::string(PolicySet),
               re::TableFormatVersion},
      std::move(T));
  return true;
}

PolicyTables core::loadPolicyTables(const std::vector<uint8_t> &Blob,
                                    std::string_view ExpectHashHex,
                                    std::string_view ExpectIsa,
                                    std::string_view ExpectPolicySet) {
  if (!ExpectHashHex.empty() && re::verifyBlobHashHex(Blob) != ExpectHashHex)
    throw std::runtime_error(
        "policy table blob hash does not match the expected content hash");
  return deserializePolicyTables(Blob, ExpectIsa, ExpectPolicySet);
}

std::vector<uint8_t> core::serializePolicyTables(const PolicyTables &T,
                                                 std::string_view Isa,
                                                 std::string_view PolicySet) {
  return re::serializeTables({{"NoControlFlow", &T.NoControlFlow},
                              {"DirectJump", &T.DirectJump},
                              {"MaskedJump", &T.MaskedJump}},
                             Isa, PolicySet);
}

std::vector<uint8_t> core::serializePolicyTables(const PolicyTables &T) {
  return serializePolicyTables(T, IsaX86, PolicySetNacl);
}

PolicyTables
core::deserializePolicyTables(const std::vector<uint8_t> &Blob,
                              std::string_view ExpectIsa,
                              std::string_view ExpectPolicySet) {
  re::TableBundle Bundle =
      re::deserializeTables(Blob, ExpectIsa, ExpectPolicySet);
  if (Bundle.Tables.size() != 3 ||
      Bundle.Tables[0].first != "NoControlFlow" ||
      Bundle.Tables[1].first != "DirectJump" ||
      Bundle.Tables[2].first != "MaskedJump")
    throw std::runtime_error("policy table blob has unexpected table set");
  PolicyTables T;
  T.NoControlFlow = std::move(Bundle.Tables[0].second);
  T.DirectJump = std::move(Bundle.Tables[1].second);
  T.MaskedJump = std::move(Bundle.Tables[2].second);
  return T;
}

std::string core::policyTableHashHex(const PolicyTables &T) {
  return re::blobHashHex(serializePolicyTables(T));
}

std::string core::policyTableHashHex(const PolicyTables &T,
                                     std::string_view Isa,
                                     std::string_view PolicySet) {
  return re::blobHashHex(serializePolicyTables(T, Isa, PolicySet));
}
