//===- core/TableRegistry.cpp ---------------------------------*- C++ -*-===//

#include "core/TableRegistry.h"

#include "regex/TableIO.h"

#include <atomic>
#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::core;

TableRegistry &TableRegistry::instance() {
  static TableRegistry R;
  return R;
}

const TableEntry *TableRegistry::findLocked(const TableKey &K) const {
  for (const TableEntry *E : Entries)
    if (E->Key == K)
      return E;
  return nullptr;
}

const TableEntry &TableRegistry::insertLocked(const TableKey &K,
                                              PolicyTables T) {
  // Everything an entry exposes is derived from the one tables instance
  // right here, under the lock: the canonical tagged blob (and so the
  // content address) and the fused fast-path form. Entries are
  // intentionally leaked — immortal, like the singletons this replaces.
  auto *E = new TableEntry;
  E->Key = K;
  E->Tables = new PolicyTables(std::move(T));
  E->Blob = serializePolicyTables(*E->Tables, K.Isa, K.PolicySet);
  E->HashHex = re::blobHashHex(E->Blob);
  E->Fused = new FusedPolicy(buildFusedPolicy(*E->Tables));
  Entries.push_back(E);
  return *E;
}

const TableEntry &TableRegistry::getOrBuild(const TableKey &K,
                                            PolicyTables (*Build)()) {
  std::lock_guard<std::mutex> L(M);
  if (const TableEntry *E = findLocked(K))
    return *E;
  return insertLocked(K, Build());
}

const TableEntry &TableRegistry::adopt(const TableKey &K, PolicyTables T) {
  std::lock_guard<std::mutex> L(M);
  if (const TableEntry *E = findLocked(K)) {
    std::string Hash =
        re::blobHashHex(serializePolicyTables(T, K.Isa, K.PolicySet));
    if (Hash == E->HashHex)
      return *E;
    throw std::runtime_error(
        "cannot adopt policy tables for " + K.Isa + "/" + K.PolicySet +
        ": a different table set (content hash " + E->HashHex +
        ") is already registered and in use; the adopted blob hashes to " +
        Hash);
  }
  return insertLocked(K, std::move(T));
}

const TableEntry *TableRegistry::byKey(std::string_view Isa,
                                       std::string_view PolicySet) const {
  std::lock_guard<std::mutex> L(M);
  for (const TableEntry *E : Entries)
    if (E->Key.Isa == Isa && E->Key.PolicySet == PolicySet &&
        E->Key.Format == re::TableFormatVersion)
      return E;
  return nullptr;
}

const TableEntry *TableRegistry::byHash(std::string_view HashHex) const {
  std::lock_guard<std::mutex> L(M);
  for (const TableEntry *E : Entries)
    if (E->HashHex == HashHex)
      return E;
  return nullptr;
}

std::vector<const TableEntry *> TableRegistry::entries() const {
  std::lock_guard<std::mutex> L(M);
  return Entries;
}

const TableEntry &core::defaultTableEntry() {
  // Entries are immortal and a key binds to one entry forever, so the
  // resolved pointer can be cached: the steady-state read is one
  // acquire load, matching the old double-checked singleton.
  static std::atomic<const TableEntry *> Cached{nullptr};
  if (const TableEntry *E = Cached.load(std::memory_order_acquire))
    return *E;
  const TableEntry &E = TableRegistry::instance().getOrBuild(
      TableKey{IsaX86, PolicySetNacl, re::TableFormatVersion},
      buildPolicyTables);
  Cached.store(&E, std::memory_order_release);
  return E;
}
