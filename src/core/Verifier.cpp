//===- core/Verifier.cpp - The trusted checker core ------------*- C++ -*-===//
//
// This file is the run-time trusted computing base of the checker, kept
// deliberately close to the C of the paper's Figures 5 and 6. The
// `extractTarget` helper is the paper's `extract`: it reads the relative
// displacement out of a just-matched DirectJump instruction and marks the
// target.
//
// `verifyStep` factors one iteration of the Figure-5 loop out of
// `verifyImage` so that the chunk-parallel verifier (core/Shard.h) can
// run the identical chain from any resume position; the sequential
// entry points below are thin loops over it.
//
// Both engines live here. The legacy overloads (PolicyTables&) walk the
// three separate uint16-id tables per byte — the paper's C, verbatim —
// and survive as the differential reference (`checkLegacy`). The fused
// overloads (FusedPolicy&) make the identical decisions over the
// 18.75 KiB fused 8-bit array, with four exact accelerations: the
// chain-safe one-byte fast return, the MjAliveByte gate that skips the
// MaskedJump walk when its first transition already rejects, the
// run-skipping scan (`safeRunEnd`) that marks whole safe-byte runs
// valid without entering the chain at all, and the branchless
// NoControlFlow sweep (`ncfSweep`) that streams every non-exceptional
// stretch through the single fused table with one load per byte —
// restart rows make instruction-boundary restarts free — handing back
// to the full Figure-5 chain only at ExcByte-flagged starts. DESIGN.md
// section 15 states the equivalence argument; the fuzz harness's
// `--fused` mode and tests/fused_tables_test.cpp enforce it
// bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"

#include "core/NcfSweep.h"

#include <algorithm>

using namespace rocksalt;
using namespace rocksalt::core;

bool core::dfaMatch(const re::Dfa &A, const uint8_t *Code, uint32_t *Pos,
                    uint32_t Size) {
  // 32-bit state: Dfa.Start is uint32_t, and a uint16_t here would wrap
  // silently if the table ever outgrew the 16-bit id range (buildDfa
  // rejects such tables, but the TCB should not rely on that alone).
  uint32_t State = A.Start;
  uint32_t Off = 0;

  while (*Pos + Off < Size) {
    State = A.Table[State][Code[*Pos + Off]];
    Off++;
    if (A.Rejects[State])
      break;
    if (A.Accepts[State]) {
      *Pos += Off;
      return true;
    }
  }
  return false;
}

namespace {

/// The paper's `extract`: pulls the pc-relative displacement out of the
/// DirectJump instruction spanning [Start, End). Returns false when the
/// destination lies outside [0, Size).
bool extractTarget(const uint8_t *Code, uint32_t Start, uint32_t End,
                   uint32_t Size, uint32_t *TargetOut) {
  uint8_t B0 = Code[Start];
  int32_t Disp;
  if (B0 == 0xEB || (B0 >= 0x70 && B0 <= 0x7F)) {
    Disp = static_cast<int8_t>(Code[End - 1]);
  } else {
    // E8/E9 rel32 or 0F 8x rel32: the displacement is the last 4 bytes.
    uint32_t Raw = uint32_t(Code[End - 4]) | (uint32_t(Code[End - 3]) << 8) |
                   (uint32_t(Code[End - 2]) << 16) |
                   (uint32_t(Code[End - 1]) << 24);
    Disp = static_cast<int32_t>(Raw);
  }
  int64_t Dest = int64_t(End) + Disp;
  if (Dest < 0 || Dest >= int64_t(Size))
    return false;
  *TargetOut = static_cast<uint32_t>(Dest);
  return true;
}

} // namespace

StepKind core::verifyStep(const PolicyTables &T, const uint8_t *Code,
                          uint32_t *Pos, uint32_t Size, uint32_t *TargetOut) {
  uint32_t SavedPos = *Pos;
  if (dfaMatch(T.MaskedJump, Code, Pos, Size))
    return StepKind::MaskedJump;
  if (dfaMatch(T.NoControlFlow, Code, Pos, Size))
    return StepKind::NoControlFlow;
  if (dfaMatch(T.DirectJump, Code, Pos, Size)) {
    if (extractTarget(Code, SavedPos, *Pos, Size, TargetOut))
      return StepKind::DirectJump;
    *Pos = SavedPos;
  }
  return StepKind::Fail;
}

StepKind core::verifyStep(const FusedPolicy &P, const uint8_t *Code,
                          uint32_t *Pos, uint32_t Size, uint32_t *TargetOut) {
  uint32_t SavedPos = *Pos;
  if (SavedPos < Size) {
    uint8_t B0 = Code[SavedPos];
    // Chain-safe byte: MaskedJump's first transition rejects and
    // NoControlFlow's accepts, so the whole chain step is decided here
    // — "NoControlFlow, length 1" — for any suffix.
    if (P.SafeByte[B0]) {
      ++*Pos;
      return StepKind::NoControlFlow;
    }
    // MjAliveByte gate: when MaskedJump's first transition on B0 is a
    // reject, dfaMatch over it returns false after one step — skip the
    // walk entirely. Exact: an alive first transition (continue OR
    // accept) still takes the full fused walk.
    if (P.MjAliveByte[B0] &&
        re::fusedMatch(P.F, FusedMaskedJump, Code, Pos, Size))
      return StepKind::MaskedJump;
  }
  if (re::fusedMatch(P.F, FusedNoControlFlow, Code, Pos, Size))
    return StepKind::NoControlFlow;
  if (re::fusedMatch(P.F, FusedDirectJump, Code, Pos, Size)) {
    if (extractTarget(Code, SavedPos, *Pos, Size, TargetOut))
      return StepKind::DirectJump;
    *Pos = SavedPos;
  }
  return StepKind::Fail;
}

const char *core::rejectReasonName(RejectReason R) {
  switch (R) {
  case RejectReason::None:
    return "none";
  case RejectReason::NoParse:
    return "no-parse";
  case RejectReason::BadTarget:
    return "bad-target";
  case RejectReason::UnalignedBundle:
    return "unaligned-bundle";
  }
  return "?";
}

void core::finalizeCheck(CheckResult &R, uint32_t Bundle) {
  uint32_t Size = static_cast<uint32_t>(R.Valid.size());
  // Branchless violation sweep first: the common (accepting) image pays
  // one vectorizable pass instead of a data-dependent branch per byte.
  uint8_t AnyBad = 0;
  for (uint32_t I = 0; I < Size; ++I)
    AnyBad |= uint8_t(R.Target[I] & (R.Valid[I] ^ 1));
  for (uint32_t I = 0; I < Size; I += Bundle)
    AnyBad |= uint8_t(R.Valid[I] ^ 1);
  if (!AnyBad) {
    R.Ok = true;
    R.Reason = RejectReason::None;
    return;
  }
  // Some violation exists: replay the exact scan to pin the reason
  // (first violating position; bad-target outranks alignment there).
  R.Ok = false;
  R.Reason = RejectReason::None;
  for (uint32_t I = 0; I < Size && R.Reason == RejectReason::None; ++I) {
    if (R.Target[I] && !R.Valid[I])
      R.Reason = RejectReason::BadTarget;
    else if (!(I & (Bundle - 1)) && !R.Valid[I])
      R.Reason = RejectReason::UnalignedBundle;
  }
}

bool core::verifyImage(const PolicyTables &T, const uint8_t *Code,
                       uint32_t Size) {
  uint32_t Pos = 0;
  bool Ok = true;
  std::vector<uint8_t> Valid(Size, 0);
  std::vector<uint8_t> Target(Size, 0);

  while (Pos < Size) {
    Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(T, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      Target[Dest] = 1;
      break;
    case StepKind::Fail:
      return false;
    }
  }

  for (uint32_t I = 0; I < Size; ++I)
    Ok = Ok && (!Target[I] || Valid[I]) && ((I & (BundleSize - 1)) || Valid[I]);

  return Ok;
}

namespace {

using detail::SweepStop;

/// The sequential entry points' form of the sweep (core/NcfSweep.h):
/// whole-image limit, instruction starts marked into the \p Valid
/// bitmap, no fail-position tracking (the callers only need the
/// verdict). Never returns SweepStop::Bound.
SweepStop ncfSweep(const FusedPolicy &P, const uint8_t *Code, uint32_t Size,
                   uint32_t *Pos, uint8_t *Valid) {
  return detail::ncfSweepImpl<false>(
      P, Code, Size, Size, Pos,
      [Valid](uint32_t Q, uint8_t IsStart) { Valid[Q] = IsStart; });
}

} // namespace

bool core::verifyImage(const FusedPolicy &P, const uint8_t *Code,
                       uint32_t Size) {
  uint32_t Pos = 0;
  std::vector<uint8_t> Valid(Size, 0);
  // Direct jumps are sparse; a destination list beats a second
  // image-sized bitmap (no 1 MiB clear, no full-image final pass).
  std::vector<uint32_t> Targets;

  while (Pos < Size) {
    uint8_t B0 = Code[Pos];
    // Run skipping: a run of chain-safe bytes is a sequence of one-byte
    // NoControlFlow steps whatever follows it, so every position in the
    // run is an instruction start — mark wholesale and jump past.
    if (P.RunSkip && P.SafeByte[B0]) {
      uint32_t End = safeRunEnd(P, Code, Pos, Size);
      std::fill(Valid.begin() + Pos, Valid.begin() + End, uint8_t(1));
      Pos = End;
      continue;
    }
    if (P.ExcByte[B0] != 1) {
      switch (ncfSweep(P, Code, Size, &Pos, Valid.data())) {
      case SweepStop::ExcStart:
        break; // full chain handles the exceptional start below
      case SweepStop::Bound:   // unreachable: Limit == Size
      case SweepStop::CleanEnd:
        continue; // Pos == Size: outer loop exits
      case SweepStop::Fail:
        return false;
      }
    }
    Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(P, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      Targets.push_back(Dest);
      break;
    case StepKind::Fail:
      return false;
    }
  }

  uint8_t Aligned = 1;
  for (uint32_t I = 0; I < Size; I += BundleSize)
    Aligned &= Valid[I];
  if (!Aligned)
    return false;
  for (uint32_t T : Targets)
    if (!Valid[T])
      return false;
  return true;
}

CheckResult core::checkLegacy(const PolicyTables &T, const uint8_t *Code,
                              uint32_t Size) {
  CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  uint32_t Pos = 0;
  while (Pos < Size) {
    R.Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(T, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
      // The jump half is the last two bytes of the matched pair,
      // whatever the mask half's length.
      R.PairJmp[Pos - MaskedJumpHalfLen] = 1;
      break;
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      R.Target[Dest] = 1;
      break;
    case StepKind::Fail:
      R.Ok = false;
      R.Reason = RejectReason::NoParse;
      return R;
    }
  }

  finalizeCheck(R);
  return R;
}

CheckResult RockSalt::check(const uint8_t *Code, uint32_t Size) const {
  CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  const FusedPolicy &P = Fused;
  uint32_t Pos = 0;
  while (Pos < Size) {
    uint8_t B0 = Code[Pos];
    // Safe-byte runs: a run never contains a masked-jump pair or a
    // direct jump (both classes are excluded from SafeByte by
    // construction), so PairJmp/Target stay untouched across it.
    if (P.RunSkip && P.SafeByte[B0]) {
      uint32_t End = safeRunEnd(P, Code, Pos, Size);
      std::fill(R.Valid.begin() + Pos, R.Valid.begin() + End, uint8_t(1));
      Pos = End;
      continue;
    }
    // The branchless NoControlFlow sweep covers every step the full
    // chain could only ever resolve as NoControlFlow; it never touches
    // PairJmp/Target, so the instrumented result is identical.
    if (P.ExcByte[B0] != 1) {
      switch (ncfSweep(P, Code, Size, &Pos, R.Valid.data())) {
      case SweepStop::ExcStart:
        break;
      case SweepStop::Bound:   // unreachable: Limit == Size
      case SweepStop::CleanEnd:
        continue;
      case SweepStop::Fail:
        R.Ok = false;
        R.Reason = RejectReason::NoParse;
        return R;
      }
    }
    R.Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(P, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
      // The jump half is the last two bytes of the matched pair,
      // whatever the mask half's length.
      R.PairJmp[Pos - MaskedJumpHalfLen] = 1;
      break;
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      R.Target[Dest] = 1;
      break;
    case StepKind::Fail:
      R.Ok = false;
      R.Reason = RejectReason::NoParse;
      return R;
    }
  }

  finalizeCheck(R);
  return R;
}
