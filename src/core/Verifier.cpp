//===- core/Verifier.cpp - The trusted checker core ------------*- C++ -*-===//
//
// This file is the run-time trusted computing base of the checker, kept
// deliberately close to the C of the paper's Figures 5 and 6. The
// `extractTarget` helper is the paper's `extract`: it reads the relative
// displacement out of a just-matched DirectJump instruction and marks the
// target.
//
// `verifyStep` factors one iteration of the Figure-5 loop out of
// `verifyImage` so that the chunk-parallel verifier (core/Shard.h) can
// run the identical chain from any resume position; the sequential
// entry points below are thin loops over it.
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"

using namespace rocksalt;
using namespace rocksalt::core;

bool core::dfaMatch(const re::Dfa &A, const uint8_t *Code, uint32_t *Pos,
                    uint32_t Size) {
  // 32-bit state: Dfa.Start is uint32_t, and a uint16_t here would wrap
  // silently if the table ever outgrew the 16-bit id range (buildDfa
  // rejects such tables, but the TCB should not rely on that alone).
  uint32_t State = A.Start;
  uint32_t Off = 0;

  while (*Pos + Off < Size) {
    State = A.Table[State][Code[*Pos + Off]];
    Off++;
    if (A.Rejects[State])
      break;
    if (A.Accepts[State]) {
      *Pos += Off;
      return true;
    }
  }
  return false;
}

namespace {

/// The paper's `extract`: pulls the pc-relative displacement out of the
/// DirectJump instruction spanning [Start, End). Returns false when the
/// destination lies outside [0, Size).
bool extractTarget(const uint8_t *Code, uint32_t Start, uint32_t End,
                   uint32_t Size, uint32_t *TargetOut) {
  uint8_t B0 = Code[Start];
  int32_t Disp;
  if (B0 == 0xEB || (B0 >= 0x70 && B0 <= 0x7F)) {
    Disp = static_cast<int8_t>(Code[End - 1]);
  } else {
    // E8/E9 rel32 or 0F 8x rel32: the displacement is the last 4 bytes.
    uint32_t Raw = uint32_t(Code[End - 4]) | (uint32_t(Code[End - 3]) << 8) |
                   (uint32_t(Code[End - 2]) << 16) |
                   (uint32_t(Code[End - 1]) << 24);
    Disp = static_cast<int32_t>(Raw);
  }
  int64_t Dest = int64_t(End) + Disp;
  if (Dest < 0 || Dest >= int64_t(Size))
    return false;
  *TargetOut = static_cast<uint32_t>(Dest);
  return true;
}

} // namespace

StepKind core::verifyStep(const PolicyTables &T, const uint8_t *Code,
                          uint32_t *Pos, uint32_t Size, uint32_t *TargetOut) {
  uint32_t SavedPos = *Pos;
  if (dfaMatch(T.MaskedJump, Code, Pos, Size))
    return StepKind::MaskedJump;
  if (dfaMatch(T.NoControlFlow, Code, Pos, Size))
    return StepKind::NoControlFlow;
  if (dfaMatch(T.DirectJump, Code, Pos, Size)) {
    if (extractTarget(Code, SavedPos, *Pos, Size, TargetOut))
      return StepKind::DirectJump;
    *Pos = SavedPos;
  }
  return StepKind::Fail;
}

const char *core::rejectReasonName(RejectReason R) {
  switch (R) {
  case RejectReason::None:
    return "none";
  case RejectReason::NoParse:
    return "no-parse";
  case RejectReason::BadTarget:
    return "bad-target";
  case RejectReason::UnalignedBundle:
    return "unaligned-bundle";
  }
  return "?";
}

void core::finalizeCheck(CheckResult &R) {
  uint32_t Size = static_cast<uint32_t>(R.Valid.size());
  R.Ok = true;
  R.Reason = RejectReason::None;
  for (uint32_t I = 0; I < Size; ++I) {
    if (R.Target[I] && !R.Valid[I]) {
      R.Ok = false;
      if (R.Reason == RejectReason::None)
        R.Reason = RejectReason::BadTarget;
    }
    if (!(I & (BundleSize - 1)) && !R.Valid[I]) {
      R.Ok = false;
      if (R.Reason == RejectReason::None)
        R.Reason = RejectReason::UnalignedBundle;
    }
  }
}

bool core::verifyImage(const PolicyTables &T, const uint8_t *Code,
                       uint32_t Size) {
  uint32_t Pos = 0;
  bool Ok = true;
  std::vector<uint8_t> Valid(Size, 0);
  std::vector<uint8_t> Target(Size, 0);

  while (Pos < Size) {
    Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(T, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      Target[Dest] = 1;
      break;
    case StepKind::Fail:
      return false;
    }
  }

  for (uint32_t I = 0; I < Size; ++I)
    Ok = Ok && (!Target[I] || Valid[I]) && ((I & (BundleSize - 1)) || Valid[I]);

  return Ok;
}

CheckResult RockSalt::check(const uint8_t *Code, uint32_t Size) const {
  CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  uint32_t Pos = 0;
  while (Pos < Size) {
    R.Valid[Pos] = 1;
    uint32_t Dest = 0;
    switch (verifyStep(Tables, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
      // The jump half is the last two bytes of the matched pair,
      // whatever the mask half's length.
      R.PairJmp[Pos - MaskedJumpHalfLen] = 1;
      break;
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      R.Target[Dest] = 1;
      break;
    case StepKind::Fail:
      R.Ok = false;
      R.Reason = RejectReason::NoParse;
      return R;
    }
  }

  finalizeCheck(R);
  return R;
}
