//===- core/BaselineChecker.h - ncval-style hand checker -------*- C++ -*-===//
///
/// \file
/// A from-scratch reimplementation of the *style* of Google's original
/// NaCl validator (paper section 3.1): a hand-written partial decoder
/// whose opcode/length logic is intertwined with the policy checks. It
/// enforces the same aligned sandbox policy as the RockSalt checker and
/// is used two ways, both from the paper's evaluation:
///
///  * agreement testing (E4): RockSalt and this checker must return the
///    same verdict on large generated and mutated corpora;
///  * performance baseline (E1): the checker-throughput bench compares
///    the two implementations.
///
/// Everything in this file is exactly the kind of code the paper argues
/// is hard to trust — which is the point of keeping it around.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_BASELINECHECKER_H
#define ROCKSALT_CORE_BASELINECHECKER_H

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace core {

/// Returns true iff the image satisfies the aligned sandbox policy.
bool baselineVerify(const uint8_t *Code, uint32_t Size);

inline bool baselineVerify(const std::vector<uint8_t> &Code) {
  return baselineVerify(Code.data(), static_cast<uint32_t>(Code.size()));
}

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_BASELINECHECKER_H
