//===- core/TableRegistry.h - Multi-ISA policy table registry --*- C++ -*-===//
///
/// \file
/// The process-wide registry of compiled policy table sets, keyed by
/// (ISA, policy-set, serialization format version) and content-addressed
/// by the SHA-256 of each entry's canonical RSTB blob. It replaces the
/// old `policyTables()` / `fusedPolicyTables()` singleton pair, which
/// hard-wired "the one x86 table set" into the process and hid two real
/// identity bugs:
///
///  * an `adoptPolicyTables()` that lost the race with first use
///    silently returned false, so a `--tables-from` client could verify
///    against freshly built tables instead of the file it named;
///  * the fused fast-path form was cached in a *second* independent
///    singleton, so after an adoption the fused tables could disagree
///    with the legacy ones they were supposedly fused from.
///
/// The registry fixes both by construction. Every entry is immutable
/// and immortal (verifiers hold references across shutdown, exactly
/// like the singletons it replaces), and registration is atomic: the
/// canonical blob, its hash, and the fused form are all derived from
/// the tables inside the registry lock, so an entry's Tables, Fused,
/// Blob, and HashHex can never refer to different table sets. A key is
/// bound to exactly one content hash for the life of the process —
/// re-registering the same tables is an idempotent no-op, registering
/// *different* tables under a taken key throws with both hashes.
///
/// The x86/"nacl" entry is the pre-registered default tenant (built
/// lazily on first use, exactly as before); `mips::mipsTableEntry()`
/// registers the second. The verification service serves any
/// registered entry over the wire by ISA or content hash
/// (svc/Service.h).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_TABLEREGISTRY_H
#define ROCKSALT_CORE_TABLEREGISTRY_H

#include "core/Policy.h"
#include "regex/TableIO.h"

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rocksalt {
namespace core {

/// Canonical identity tags. The ISA tag names the instruction set the
/// tables decode; the policy-set tag names the sandbox discipline they
/// enforce. Both are embedded in the hashed RSTB v2 header, so a blob's
/// content address commits to its identity.
constexpr const char *IsaX86 = "x86";
constexpr const char *IsaMips = "mips";
constexpr const char *PolicySetNacl = "nacl";

/// The registry key: which ISA, which policy set, which serialization
/// format the entry's canonical blob uses.
struct TableKey {
  std::string Isa;
  std::string PolicySet;
  uint32_t Format = re::TableFormatVersion;

  bool operator==(const TableKey &O) const {
    return Isa == O.Isa && PolicySet == O.PolicySet && Format == O.Format;
  }
};

/// One registered table set. Immutable and immortal once registered;
/// all five members are derived from the same PolicyTables instance
/// under the registry lock, so they can never disagree.
struct TableEntry {
  TableKey Key;
  /// The legacy three-table form the Figure-5 chain walks.
  const PolicyTables *Tables = nullptr;
  /// The fused fast-path form — built at registration time from
  /// *these* tables (fuse-on-register), never cached separately.
  const FusedPolicy *Fused = nullptr;
  /// The canonical RSTB v2 serialization, ISA/policy-set tagged.
  std::vector<uint8_t> Blob;
  /// SHA-256 of the blob payload, lowercase hex — the entry's content
  /// address, what the service's tables negotiation compares against.
  std::string HashHex;
};

/// The process-wide registry. All methods are thread-safe; lookups
/// return stable pointers that remain valid forever.
class TableRegistry {
public:
  static TableRegistry &instance();

  /// Returns the entry for \p K, building (then fusing, serializing,
  /// and hashing) it via \p Build on first use. Builds run under the
  /// registry lock so concurrent first uses do exactly one build, as
  /// the old double-checked singleton did.
  const TableEntry &getOrBuild(const TableKey &K, PolicyTables (*Build)());

  /// Registers \p T under \p K. If the key is free the entry is
  /// inserted and returned. If the key is already bound to tables with
  /// the same canonical content hash, the existing entry is returned
  /// (idempotent — adopting the tables the process already runs is not
  /// an error). If the key is bound to *different* tables, throws
  /// std::runtime_error naming both content hashes: late adoption
  /// never silently loses to first use.
  const TableEntry &adopt(const TableKey &K, PolicyTables T);

  /// The entry registered under (Isa, PolicySet) at the current format
  /// version, or nullptr. Never builds.
  const TableEntry *byKey(std::string_view Isa,
                          std::string_view PolicySet) const;

  /// The entry whose canonical blob has the given content address, or
  /// nullptr — how the service resolves a hash-bearing tables request
  /// against every registered ISA. Never builds.
  const TableEntry *byHash(std::string_view HashHex) const;

  /// Snapshot of every registered entry (stable pointers).
  std::vector<const TableEntry *> entries() const;

private:
  TableRegistry() = default;
  const TableEntry *findLocked(const TableKey &K) const;
  const TableEntry &insertLocked(const TableKey &K, PolicyTables T);

  mutable std::mutex M;
  std::vector<const TableEntry *> Entries;
};

/// The default x86/"nacl" entry — what `policyTables()` /
/// `fusedPolicyTables()` now serve. Built on first use unless
/// `adoptPolicyTables()` registered a blob-loaded set first.
const TableEntry &defaultTableEntry();

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_TABLEREGISTRY_H
