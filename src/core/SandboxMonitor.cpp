//===- core/SandboxMonitor.cpp --------------------------------*- C++ -*-===//

#include "core/SandboxMonitor.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::core;

SandboxMonitor::SandboxMonitor(sem::Cpu &C, CheckResult R, uint32_t Base,
                               uint32_t Size)
    : Cpu(C), Check(std::move(R)), CodeBase(Base), CodeSize(Size) {
  for (int S = 0; S < 6; ++S) {
    SegVal0[S] = C.M.SegVal[S];
    SegBase0[S] = C.M.SegBase[S];
    SegLimit0[S] = C.M.SegLimit[S];
  }
  // Definition 1, item 5: the code bytes must never change. Writes go
  // through the hook, so we can detect any store into the code region —
  // including one a buggy checker would have allowed via an escaped
  // segment.
  Cpu.Hooks.OnWrite = [this](uint32_t Phys, uint8_t, uint8_t) {
    if (Phys - CodeBase < CodeSize && !PendingWriteViolation)
      PendingWriteViolation = Violation{Steps, "write into code segment"};
  };
}

std::optional<std::string> SandboxMonitor::checkInvariants() const {
  // Items 2-3: segment registers point at their original segments.
  for (int S = 0; S < 6; ++S) {
    if (Cpu.M.SegVal[S] != SegVal0[S] || Cpu.M.SegBase[S] != SegBase0[S] ||
        Cpu.M.SegLimit[S] != SegLimit0[S])
      return "segment register " + std::to_string(S) + " changed";
  }

  if (!Cpu.M.running())
    return std::nullopt; // fault/halt are safe terminal states

  // Item 4 + Definitions 2-3: the PC is a checker-validated instruction
  // start, or the jump half of a masked pair (the intermediate state of
  // the 2-safe argument).
  // A PC at or beyond the CS limit will fault on the next fetch — the
  // segment hardware, not the checker, provides the bound (the mask only
  // guarantees alignment). That is a safe pending stop, not a violation.
  uint32_t Pc = Cpu.M.Pc;
  if (Pc >= CodeSize)
    return std::nullopt;
  if (!Check.Valid[Pc] && !Check.PairJmp[Pc]) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "pc 0x%x is not a validated position",
                  Pc);
    return std::string(Buf);
  }
  return std::nullopt;
}

std::optional<SandboxMonitor::Violation>
SandboxMonitor::runMonitored(uint64_t MaxSteps) {
  // The initial state must itself be locally safe.
  if (std::optional<std::string> V = checkInvariants())
    return Violation{0, *V};

  while (Steps < MaxSteps && Cpu.M.running()) {
    rtl::Status St = Cpu.step();
    ++Steps;
    if (PendingWriteViolation)
      return PendingWriteViolation;
    if (St == rtl::Status::Error)
      return Violation{Steps, "model error state reached"};
    if (std::optional<std::string> V = checkInvariants())
      return Violation{Steps, *V};
  }
  return std::nullopt;
}
