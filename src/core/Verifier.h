//===- core/Verifier.h - The RockSalt NaCl checker -------------*- C++ -*-===//
///
/// \file
/// The RockSalt verifier: a direct port of the paper's Figures 5 and 6.
/// The run-time trusted computing base is the table-walking code below;
/// everything interesting lives in the generated DFA tables
/// (core/Policy.h).
///
/// Two engines implement the same Figure-5 decision procedure:
///
///  * the **legacy** engine — `dfaMatch` over the three separate
///    uint16-id tables, per byte, exactly the C of the paper's
///    Figure 6. Kept as the differential reference (`checkLegacy`);
///
///  * the **fused** engine — one L1-resident 8-bit transition array
///    (core::FusedPolicy) with a run-skipping fast path for the
///    straight-line common case. This is what `RockSalt`, the parallel
///    verifier, and the incremental verifier drive in production.
///
/// The two are certified bit-identical (verdict, reject reason, and the
/// Valid/Target/PairJmp bitmaps) by tests/fused_tables_test.cpp and the
/// `fused_equivalence` fuzz gate; DESIGN.md section 15 gives the
/// argument for why the equivalence holds by construction.
///
/// `check` is an instrumented variant returning the `valid` and `target`
/// arrays plus the positions of the jump halves of masked-jump pairs;
/// the sandbox monitor and the proofs-as-tests use it. `verify` is the
/// bare boolean of Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_VERIFIER_H
#define ROCKSALT_CORE_VERIFIER_H

#include "core/Policy.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rocksalt {
namespace core {

/// Figure 6: executes DFA transitions over code[*Pos..Size); on an accept
/// advances *Pos past the shortest accepted prefix and returns true; on a
/// reject state or exhaustion leaves *Pos unchanged and returns false.
bool dfaMatch(const re::Dfa &A, const uint8_t *Code, uint32_t *Pos,
              uint32_t Size);

/// Which grammar matched at a chain position (or nothing did).
enum class StepKind : uint8_t { MaskedJump, NoControlFlow, DirectJump, Fail };

/// One step of the Figure-5 match chain at *Pos: tries MaskedJump, then
/// NoControlFlow, then DirectJump, in the same order as `verifyImage`.
/// On a match advances *Pos past it and returns the kind; for DirectJump
/// the extracted pc-relative destination is stored in *TargetOut (a step
/// whose destination lies outside [0, Size) fails instead, like the
/// paper's `extract`). On Fail leaves *Pos unchanged. This is the
/// resumable entry point the chunk-parallel verifier shards on.
StepKind verifyStep(const PolicyTables &T, const uint8_t *Code, uint32_t *Pos,
                    uint32_t Size, uint32_t *TargetOut);

/// Figure 5: returns true iff the image respects the aligned sandbox
/// policy.
bool verifyImage(const PolicyTables &T, const uint8_t *Code, uint32_t Size);

/// Fused-engine verifyStep: the identical Figure-5 chain over the fused
/// transition array. Bit-identical decisions and *Pos movement to the
/// legacy overload above — the chain-safe fast return and the
/// MjAliveByte gate are exact consequences of the start-state rows
/// (core/Policy.h). This is the resumable entry point the fused shard
/// scanner and the incremental verifier drive.
StepKind verifyStep(const FusedPolicy &P, const uint8_t *Code, uint32_t *Pos,
                    uint32_t Size, uint32_t *TargetOut);

/// Fused-engine Figure 5 with the run-skipping fast path.
bool verifyImage(const FusedPolicy &P, const uint8_t *Code, uint32_t Size);

/// Run skipping: scans forward from \p Pos while bytes stay in the
/// chain-safe class, returning the first position whose byte is unsafe
/// (or \p Limit). Every position in [Pos, result) is a one-byte
/// NoControlFlow step for ANY suffix, so the caller may mark them all
/// valid without consulting the DFA. Eight flag gathers are AND-folded
/// per iteration so the branch runs once per 8 bytes on long runs; the
/// bound checks are written `Limit - Q >= 8` (never `Q + 8 <= Limit`)
/// so they cannot wrap, and no byte at or past Limit is ever read —
/// shard and chunk-cache read-window contracts are preserved.
inline uint32_t safeRunEnd(const FusedPolicy &P, const uint8_t *Code,
                           uint32_t Pos, uint32_t Limit) {
  const uint8_t *Safe = P.SafeByte.data();
  uint32_t Q = Pos;
  while (Limit - Q >= 8 && Q < Limit) {
    const uint8_t *B = Code + Q;
    uint8_t All = uint8_t(Safe[B[0]] & Safe[B[1]] & Safe[B[2]] & Safe[B[3]] &
                          Safe[B[4]] & Safe[B[5]] & Safe[B[6]] & Safe[B[7]]);
    if (!All)
      break;
    Q += 8;
#if defined(__GNUC__)
    // On long runs, pull the next cache line in while the AND-folds of
    // the current one retire.
    if (!((Q - Pos) & 63) && Limit - Q >= 64)
      __builtin_prefetch(Code + Q + 64);
#endif
  }
  while (Q < Limit && Safe[Code[Q]])
    ++Q;
  return Q;
}

/// Why an image was rejected (None when accepted).
enum class RejectReason : uint8_t {
  None,          ///< accepted
  NoParse,       ///< no policy grammar matched at some chain position
  BadTarget,     ///< a direct jump lands on a non-instruction-start
  UnalignedBundle///< a 32-byte boundary is not an instruction start
};

const char *rejectReasonName(RejectReason R);

/// Instrumented result for monitors and tests.
struct CheckResult {
  bool Ok = false;
  RejectReason Reason = RejectReason::None;
  std::vector<uint8_t> Valid;   ///< instruction-start positions
  std::vector<uint8_t> Target;  ///< direct-jump target positions
  std::vector<uint8_t> PairJmp; ///< jump halves of masked-jump pairs
};

/// The final pass of Figure 5 over an already-scanned image: every
/// direct-jump target and every bundle boundary must be an instruction
/// start. Sets R.Ok and R.Reason (assumes the scan itself succeeded;
/// scan failures set NoParse before reaching this). \p Bundle must be
/// a power of two; it defaults to the x86 policy's 32 and is
/// parameterized so other ISAs' checkers (mips/MipsPolicy.h, bundle
/// 16) can reuse the pass.
void finalizeCheck(CheckResult &R, uint32_t Bundle = BundleSize);

/// The instrumented check over the LEGACY engine (three separate
/// uint16-id tables, per-byte dfaMatch). This is the differential
/// reference the fused engine is certified against; the fuzz harness's
/// `--fused` mode runs it in lockstep with RockSalt::check on every
/// image and demands bit-identical results.
CheckResult checkLegacy(const PolicyTables &T, const uint8_t *Code,
                        uint32_t Size);

/// The checker with its cached tables. Drives the fused engine; the
/// default constructor shares the process-wide fused singleton, the
/// FusedPolicy constructor borrows a caller-owned fused form (what the
/// long-lived services hold), and the PolicyTables constructor fuses a
/// private copy — use it only for one-off table sets (tests, loaded
/// blobs), not in per-request paths.
class RockSalt {
  std::shared_ptr<const FusedPolicy> Owned; ///< only for the fusing ctor
  const FusedPolicy &Fused;

public:
  RockSalt() : Fused(fusedPolicyTables()) {}
  explicit RockSalt(const FusedPolicy &P) : Fused(P) {}
  explicit RockSalt(const PolicyTables &T)
      : Owned(std::make_shared<const FusedPolicy>(buildFusedPolicy(T))),
        Fused(*Owned) {}

  const FusedPolicy &fused() const { return Fused; }

  /// The production entry point (Figure 5).
  bool verify(const uint8_t *Code, uint32_t Size) const {
    return verifyImage(Fused, Code, Size);
  }
  bool verify(const std::vector<uint8_t> &Code) const {
    return verify(Code.data(), static_cast<uint32_t>(Code.size()));
  }

  /// Instrumented variant (same decisions, richer result).
  CheckResult check(const uint8_t *Code, uint32_t Size) const;
  CheckResult check(const std::vector<uint8_t> &Code) const {
    return check(Code.data(), static_cast<uint32_t>(Code.size()));
  }
};

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_VERIFIER_H
