//===- core/Verifier.h - The RockSalt NaCl checker -------------*- C++ -*-===//
///
/// \file
/// The RockSalt verifier: a direct port of the paper's Figures 5 and 6.
/// The run-time trusted computing base is `dfaMatch` plus `verifyImage` —
/// under a hundred lines of table-walking code; everything interesting
/// lives in the generated DFA tables (core/Policy.h).
///
/// `check` is an instrumented variant returning the `valid` and `target`
/// arrays plus the positions of the jump halves of masked-jump pairs;
/// the sandbox monitor and the proofs-as-tests use it. `verify` is the
/// bare boolean of Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_VERIFIER_H
#define ROCKSALT_CORE_VERIFIER_H

#include "core/Policy.h"

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace core {

/// Figure 6: executes DFA transitions over code[*Pos..Size); on an accept
/// advances *Pos past the shortest accepted prefix and returns true; on a
/// reject state or exhaustion leaves *Pos unchanged and returns false.
bool dfaMatch(const re::Dfa &A, const uint8_t *Code, uint32_t *Pos,
              uint32_t Size);

/// Which grammar matched at a chain position (or nothing did).
enum class StepKind : uint8_t { MaskedJump, NoControlFlow, DirectJump, Fail };

/// One step of the Figure-5 match chain at *Pos: tries MaskedJump, then
/// NoControlFlow, then DirectJump, in the same order as `verifyImage`.
/// On a match advances *Pos past it and returns the kind; for DirectJump
/// the extracted pc-relative destination is stored in *TargetOut (a step
/// whose destination lies outside [0, Size) fails instead, like the
/// paper's `extract`). On Fail leaves *Pos unchanged. This is the
/// resumable entry point the chunk-parallel verifier shards on.
StepKind verifyStep(const PolicyTables &T, const uint8_t *Code, uint32_t *Pos,
                    uint32_t Size, uint32_t *TargetOut);

/// Figure 5: returns true iff the image respects the aligned sandbox
/// policy.
bool verifyImage(const PolicyTables &T, const uint8_t *Code, uint32_t Size);

/// Why an image was rejected (None when accepted).
enum class RejectReason : uint8_t {
  None,          ///< accepted
  NoParse,       ///< no policy grammar matched at some chain position
  BadTarget,     ///< a direct jump lands on a non-instruction-start
  UnalignedBundle///< a 32-byte boundary is not an instruction start
};

const char *rejectReasonName(RejectReason R);

/// Instrumented result for monitors and tests.
struct CheckResult {
  bool Ok = false;
  RejectReason Reason = RejectReason::None;
  std::vector<uint8_t> Valid;   ///< instruction-start positions
  std::vector<uint8_t> Target;  ///< direct-jump target positions
  std::vector<uint8_t> PairJmp; ///< jump halves of masked-jump pairs
};

/// The final pass of Figure 5 over an already-scanned image: every
/// direct-jump target and every bundle boundary must be an instruction
/// start. Sets R.Ok and R.Reason (assumes the scan itself succeeded;
/// scan failures set NoParse before reaching this).
void finalizeCheck(CheckResult &R);

/// The checker with its cached tables.
class RockSalt {
  const PolicyTables &Tables;

public:
  RockSalt() : Tables(policyTables()) {}
  explicit RockSalt(const PolicyTables &T) : Tables(T) {}

  /// The production entry point (Figure 5).
  bool verify(const uint8_t *Code, uint32_t Size) const {
    return verifyImage(Tables, Code, Size);
  }
  bool verify(const std::vector<uint8_t> &Code) const {
    return verify(Code.data(), static_cast<uint32_t>(Code.size()));
  }

  /// Instrumented variant (same decisions, richer result).
  CheckResult check(const uint8_t *Code, uint32_t Size) const;
  CheckResult check(const std::vector<uint8_t> &Code) const {
    return check(Code.data(), static_cast<uint32_t>(Code.size()));
  }
};

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_VERIFIER_H
