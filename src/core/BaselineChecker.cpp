//===- core/BaselineChecker.cpp -------------------------------*- C++ -*-===//
//
// Hand-written partial decoder + policy enforcement, ncval style. The
// instruction classification below must agree byte for byte with the
// declarative policy grammars in core/Policy.cpp; the agreement test
// suite enforces that.
//
//===----------------------------------------------------------------------===//

#include "core/BaselineChecker.h"

#include "core/Policy.h"

using namespace rocksalt;
using namespace rocksalt::core;

namespace {

/// Outcome of classifying one instruction.
struct Classified {
  bool Legal = false;
  uint32_t Length = 0;
  bool IsDirect = false;   ///< pc-relative jump/call
  int64_t Target = 0;      ///< image offset of the branch target
};

/// Cursor over the image.
struct Scan {
  const uint8_t *Code;
  uint32_t Size;
  uint32_t Pos;
  bool Overrun = false;

  uint8_t u8() {
    if (Pos >= Size) {
      Overrun = true;
      return 0;
    }
    return Code[Pos++];
  }
  void skip(uint32_t N) {
    if (Size - Pos < N)
      Overrun = true;
    else
      Pos += N;
  }
};

/// Consumes modrm + sib + displacement; returns the modrm byte.
uint8_t eatModrm(Scan &S) {
  uint8_t M = S.u8();
  uint8_t Mod = M >> 6;
  uint8_t Rm = M & 7;
  if (Mod == 3)
    return M;
  if (Rm == 4) {
    uint8_t Sib = S.u8();
    if (Mod == 0 && (Sib & 7) == 5)
      S.skip(4);
  } else if (Mod == 0 && Rm == 5) {
    S.skip(4);
  }
  if (Mod == 1)
    S.skip(1);
  else if (Mod == 2)
    S.skip(4);
  return M;
}

/// Sign-extended displacement readers for the direct-branch forms.
int32_t disp8At(const uint8_t *Code, uint32_t P) {
  return static_cast<int8_t>(Code[P]);
}
int32_t disp32At(const uint8_t *Code, uint32_t P) {
  return static_cast<int32_t>(uint32_t(Code[P]) | (uint32_t(Code[P + 1]) << 8) |
                              (uint32_t(Code[P + 2]) << 16) |
                              (uint32_t(Code[P + 3]) << 24));
}

/// Two-byte (0F) opcode classification, unprefixed context.
bool classify0F(Scan &S, Classified &Out, const uint8_t *Code) {
  uint8_t B = S.u8();
  if ((B & 0xF0) == 0x40) { // cmovcc
    eatModrm(S);
    return true;
  }
  if ((B & 0xF0) == 0x80) { // jcc rel32
    uint32_t DispPos = S.Pos;
    S.skip(4);
    if (S.Overrun)
      return false;
    Out.IsDirect = true;
    Out.Target = int64_t(S.Pos) + disp32At(Code, DispPos);
    return true;
  }
  if ((B & 0xF0) == 0x90) { // setcc, /0 only
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) == 0;
  }
  if ((B & 0xF8) == 0xC8) // bswap
    return true;

  switch (B) {
  case 0xA3: // bt
  case 0xAB: // bts
  case 0xB3: // btr
  case 0xBB: // btc
  case 0xAF: // imul
  case 0xB0: case 0xB1: // cmpxchg
  case 0xB6: case 0xB7: // movzx
  case 0xBE: case 0xBF: // movsx
  case 0xBC: case 0xBD: // bsf/bsr
  case 0xC0: case 0xC1: // xadd
  case 0xA5: case 0xAD: // shld/shrd by cl
    eatModrm(S);
    return true;
  case 0xA4: case 0xAC: // shld/shrd imm8
    eatModrm(S);
    S.skip(1);
    return true;
  case 0xBA: { // bt group, /4../7 imm8
    uint8_t M = eatModrm(S);
    S.skip(1);
    return ((M >> 3) & 7) >= 4;
  }
  default:
    return false; // push/pop fs/gs, lss/lfs/lgs, system ops, ...
  }
}

/// One-byte opcode classification. \p ImmW is the word-immediate size
/// (2 under the operand-size prefix, else 4).
bool classifyOne(Scan &S, Classified &Out, const uint8_t *Code,
                 uint32_t ImmW) {
  uint8_t B = S.u8();
  if (S.Overrun)
    return false;

  // The 00-3F ALU block (and its interlopers).
  if (B < 0x40) {
    if ((B & 7) < 4) { // ALU modrm forms, every TTT
      eatModrm(S);
      return true;
    }
    switch (B) {
    case 0x04: case 0x0C: case 0x14: case 0x1C:
    case 0x24: case 0x2C: case 0x34: case 0x3C: // op al, imm8
      S.skip(1);
      return true;
    case 0x05: case 0x0D: case 0x15: case 0x1D:
    case 0x25: case 0x2D: case 0x35: case 0x3D: // op eax, immW
      S.skip(ImmW);
      return true;
    case 0x0F:
      return classify0F(S, Out, Code);
    case 0x27: case 0x2F: case 0x37: case 0x3F: // daa/das/aaa/aas
      return true;
    default:
      return false; // push/pop sreg, prefixes
    }
  }

  if (B < 0x60) // inc/dec/push/pop r32
    return true;

  switch (B) {
  case 0x60: case 0x61: // pusha/popa
    return true;
  case 0x68:
    S.skip(ImmW);
    return true;
  case 0x6A:
    S.skip(1);
    return true;
  case 0x69:
    eatModrm(S);
    S.skip(ImmW);
    return true;
  case 0x6B:
    eatModrm(S);
    S.skip(1);
    return true;
  default:
    break;
  }

  if ((B & 0xF0) == 0x70) { // jcc rel8
    uint32_t DispPos = S.Pos;
    S.skip(1);
    if (S.Overrun)
      return false;
    Out.IsDirect = true;
    Out.Target = int64_t(S.Pos) + disp8At(Code, DispPos);
    return true;
  }

  switch (B) {
  case 0x80:
    eatModrm(S);
    S.skip(1);
    return true;
  case 0x81:
    eatModrm(S);
    S.skip(ImmW);
    return true;
  case 0x83:
    eatModrm(S);
    S.skip(1);
    return true;
  case 0x84: case 0x85: case 0x86: case 0x87:
  case 0x88: case 0x89: case 0x8A: case 0x8B:
    eatModrm(S);
    return true;
  case 0x8D: { // lea: memory operand required
    uint8_t M = eatModrm(S);
    return (M >> 6) != 3;
  }
  case 0x8F: { // pop r/m, /0 only
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) == 0;
  }
  case 0x90: case 0x91: case 0x92: case 0x93: // nop / xchg eax, r
  case 0x94: case 0x95: case 0x96: case 0x97:
  case 0x98: case 0x99: // cwde/cdq
  case 0x9C: case 0x9D: case 0x9E: case 0x9F: // pushf/popf/sahf/lahf
    return true;
  case 0xA0: case 0xA1: case 0xA2: case 0xA3: // mov moffs
    S.skip(4);
    return true;
  case 0xA4: case 0xA5: case 0xA6: case 0xA7: // movs/cmps
  case 0xAA: case 0xAB: case 0xAC: case 0xAD:
  case 0xAE: case 0xAF: // stos/lods/scas
    return true;
  case 0xA8:
    S.skip(1);
    return true;
  case 0xA9:
    S.skip(ImmW);
    return true;
  case 0xB0: case 0xB1: case 0xB2: case 0xB3: // mov r8, imm8
  case 0xB4: case 0xB5: case 0xB6: case 0xB7:
    S.skip(1);
    return true;
  case 0xB8: case 0xB9: case 0xBA: case 0xBB: // mov r32, immW
  case 0xBC: case 0xBD: case 0xBE: case 0xBF:
    S.skip(ImmW);
    return true;
  case 0xC0: case 0xC1: { // shift group imm8, /6 illegal
    uint8_t M = eatModrm(S);
    S.skip(1);
    return ((M >> 3) & 7) != 6;
  }
  case 0xC6: case 0xC7: { // mov r/m, imm — /0 only
    uint8_t M = eatModrm(S);
    S.skip(B == 0xC6 ? 1 : ImmW);
    return ((M >> 3) & 7) == 0;
  }
  case 0xC9: // leave
    return true;
  case 0xD0: case 0xD1: case 0xD2: case 0xD3: { // shift group, /6 illegal
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) != 6;
  }
  case 0xD4: case 0xD5: // aam/aad
    S.skip(1);
    return true;
  case 0xD7: // xlat
    return true;
  case 0xE8: case 0xE9: { // call/jmp rel32
    uint32_t DispPos = S.Pos;
    S.skip(4);
    if (S.Overrun)
      return false;
    Out.IsDirect = true;
    Out.Target = int64_t(S.Pos) + disp32At(Code, DispPos);
    return true;
  }
  case 0xEB: { // jmp rel8
    uint32_t DispPos = S.Pos;
    S.skip(1);
    if (S.Overrun)
      return false;
    Out.IsDirect = true;
    Out.Target = int64_t(S.Pos) + disp8At(Code, DispPos);
    return true;
  }
  case 0xF4: case 0xF5: // hlt/cmc
  case 0xF8: case 0xF9: case 0xFC: case 0xFD: // clc/stc/cld/std
    return true;
  case 0xF6: { // unary group byte; /1 illegal; /0 has imm8
    uint8_t M = eatModrm(S);
    uint8_t Digit = (M >> 3) & 7;
    if (Digit == 0)
      S.skip(1);
    return Digit != 1;
  }
  case 0xF7: {
    uint8_t M = eatModrm(S);
    uint8_t Digit = (M >> 3) & 7;
    if (Digit == 0)
      S.skip(ImmW);
    return Digit != 1;
  }
  case 0xFE: { // inc/dec r/m8
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) <= 1;
  }
  case 0xFF: { // group: only inc/dec/push are legal standalone
    uint8_t M = eatModrm(S);
    uint8_t Digit = (M >> 3) & 7;
    return Digit == 0 || Digit == 1 || Digit == 6;
  }
  default:
    // ret (C2/C3/CA/CB), les/lds, far ops, int*, in/out, loops, jcxz,
    // undocumented, x87, mov sreg — all rejected.
    return false;
  }
}

/// F0-prefixed (lock) legality: the RMW family, byte-compatible with
/// the policy's lockable set.
bool classifyLocked(Scan &S) {
  uint8_t B = S.u8();
  if (S.Overrun)
    return false;
  // 00TTT00w rm_r forms for TTT != 7 (cmp is not lockable).
  if (B < 0x40 && (B & 4) == 0 && ((B >> 3) & 7) != 7 && (B & 2) == 0) {
    eatModrm(S);
    return true;
  }
  switch (B) {
  case 0x80: case 0x83: {
    uint8_t M = eatModrm(S);
    S.skip(1);
    return ((M >> 3) & 7) != 7;
  }
  case 0x81: {
    uint8_t M = eatModrm(S);
    S.skip(4);
    return ((M >> 3) & 7) != 7;
  }
  case 0x86: case 0x87: // xchg
    eatModrm(S);
    return true;
  case 0xF6: case 0xF7: { // not/neg only
    uint8_t M = eatModrm(S);
    uint8_t Digit = (M >> 3) & 7;
    return Digit == 2 || Digit == 3;
  }
  case 0xFE: {
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) <= 1;
  }
  case 0xFF: {
    uint8_t M = eatModrm(S);
    return ((M >> 3) & 7) <= 1; // inc/dec only (no lock push)
  }
  case 0x0F: {
    uint8_t B2 = S.u8();
    switch (B2) {
    case 0xAB: case 0xB3: case 0xBB: // bts/btr/btc
    case 0xB0: case 0xB1:            // cmpxchg
    case 0xC0: case 0xC1:            // xadd
      eatModrm(S);
      return true;
    case 0xBA: {
      uint8_t M = eatModrm(S);
      S.skip(1);
      return ((M >> 3) & 7) >= 5; // bts/btr/btc imm; bt (/4) is not RMW
    }
    default:
      return false;
    }
  }
  default:
    return false;
  }
}

/// F2/F3-prefixed (rep) legality: plain-width string instructions only.
bool classifyRep(Scan &S) {
  uint8_t B = S.u8();
  switch (B) {
  case 0xA4: case 0xA5: case 0xA6: case 0xA7:
  case 0xAA: case 0xAB: case 0xAC: case 0xAD:
  case 0xAE: case 0xAF:
    return true;
  default:
    return false;
  }
}

/// Classifies the instruction at S.Pos (prefix dispatch + masked pairs
/// are handled by the caller).
Classified classify(const uint8_t *Code, uint32_t Size, uint32_t Pos) {
  Classified Out;
  Scan S{Code, Size, Pos, false};

  uint8_t First = Code[Pos];
  bool Legal;
  switch (First) {
  case 0x66:
    S.skip(1);
    // No second prefix allowed; the word-immediate size becomes 2.
    Legal = classifyOne(S, Out, Code, 2);
    // Direct branches under 0x66 would have 16-bit displacements; the
    // policy simply rejects them, and classifyOne never reaches the
    // branch opcodes with ImmW==2... it can, so explicitly reject:
    if (Out.IsDirect)
      Legal = false;
    break;
  case 0xF0:
    S.skip(1);
    Legal = classifyLocked(S);
    break;
  case 0xF2:
  case 0xF3:
    S.skip(1);
    Legal = classifyRep(S);
    break;
  default:
    Legal = classifyOne(S, Out, Code, 4);
    break;
  }

  if (!Legal || S.Overrun) {
    Out.Legal = false;
    return Out;
  }
  Out.Legal = true;
  Out.Length = S.Pos - Pos;
  return Out;
}

/// Recognizes the 5-byte masked-jump pair at Pos.
bool isMaskedPair(const uint8_t *Code, uint32_t Size, uint32_t Pos) {
  if (Size - Pos < 5)
    return false;
  if (Code[Pos] != 0x83)
    return false;
  uint8_t M1 = Code[Pos + 1];
  if ((M1 & 0xF8) != 0xE0)
    return false; // must be AND (digit 4) with mod=11
  uint8_t R = M1 & 7;
  if (R == 4)
    return false; // ESP
  if (Code[Pos + 2] != SafeMaskByte)
    return false;
  if (Code[Pos + 3] != 0xFF)
    return false;
  uint8_t M2 = Code[Pos + 4];
  return M2 == (0xE0 | R) || M2 == (0xD0 | R); // jmp *r or call *r
}

} // namespace

bool core::baselineVerify(const uint8_t *Code, uint32_t Size) {
  std::vector<uint8_t> Valid(Size, 0);
  std::vector<uint8_t> Target(Size, 0);

  uint32_t Pos = 0;
  while (Pos < Size) {
    Valid[Pos] = 1;
    if (isMaskedPair(Code, Size, Pos)) {
      Pos += 5;
      continue;
    }
    Classified C = classify(Code, Size, Pos);
    if (!C.Legal)
      return false;
    if (C.IsDirect) {
      if (C.Target < 0 || C.Target >= int64_t(Size))
        return false;
      Target[static_cast<size_t>(C.Target)] = 1;
    }
    Pos += C.Length;
  }

  for (uint32_t I = 0; I < Size; ++I) {
    if (Target[I] && !Valid[I])
      return false;
    if ((I & (BundleSize - 1)) == 0 && !Valid[I])
      return false;
  }
  return true;
}
