//===- core/Policy.h - The NaCl sandbox policy grammars --------*- C++ -*-===//
///
/// \file
/// The declarative heart of RockSalt (paper section 3.2): the aligned
/// NaCl sandbox policy is captured by three grammars, reusing the decoder
/// DSL, and compiled offline to DFA tables. The verifier's trusted core
/// (core/Verifier.h) then consists of those tables plus a few tens of
/// lines of table-walking code.
///
///  * MaskedJump — the two-instruction "nacljmp": AND r, $-32 followed
///    immediately by JMP/CALL *r through the same register (ESP
///    excluded), transliterated from the paper's nacl_MASK_p /
///    nacl_JMP_p / nacl_CALL_p definitions;
///  * DirectJump — JMP rel8/rel32, Jcc rel8/rel32, CALL rel32;
///  * NoControlFlow — the legal straight-line instructions, with the
///    prefix discipline NaCl allows (operand-size override on data ops,
///    rep on string ops, lock on memory read-modify-writes; segment
///    overrides are always rejected).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_POLICY_H
#define ROCKSALT_CORE_POLICY_H

#include "regex/Dfa.h"
#include "regex/FusedTables.h"
#include "x86/Grammars.h"

#include <array>
#include <string_view>

namespace rocksalt {
namespace core {

/// The bundle size of the aligned policy (the paper's 32).
constexpr uint32_t BundleSize = 32;

/// The mask immediate: AND r, 0xFFFFFFE0 keeps addresses bundle-aligned
/// (encoded as the sign-extended imm8 0xE0).
constexpr uint8_t SafeMaskByte = 0xE0;

/// Byte length of the jump half (JMP/CALL *r, FF /4 or FF /2) of a
/// masked-jump pair. The jump half is always the *last* two bytes of a
/// MaskedJump match, so its position is derived as (end of match) -
/// MaskedJumpHalfLen rather than (start of match) + (mask length) — the
/// mask half is free to grow without desynchronizing the PairJmp bitmap
/// (a guard test pins the current 3+2 shape).
constexpr uint32_t MaskedJumpHalfLen = 2;

/// The three policy grammars, still carrying semantic actions (useful for
/// the inversion-principle tests), plus their stripped regexes.
struct PolicyGrammars {
  gram::Grammar<x86::Instr> NoControlFlow;
  /// MaskedJump spans two instructions, so its semantic value is the pair
  /// (mask, jump); we expose only the stripped regex plus a recognizer.
  re::Regex NoControlFlowRe = nullptr;
  re::Regex DirectJumpRe = nullptr;
  re::Regex MaskedJumpRe = nullptr;
};

/// The generated DFA tables the trusted verifier core consumes.
struct PolicyTables {
  re::Dfa NoControlFlow;
  re::Dfa DirectJump;
  re::Dfa MaskedJump;
};

/// Exact state counts of the shipped (minimized, canonically
/// BFS-numbered) tables. Tests pin against these names rather than
/// magic numbers; buildPolicyTables() asserts them, so a grammar edit
/// that changes a table size fails loudly in one place.
constexpr uint32_t NoControlFlowStates = 42;
constexpr uint32_t DirectJumpStates = 8;
constexpr uint32_t MaskedJumpStates = 25;

/// Indices of the policy DFAs inside the fused transition array, in the
/// Figure-5 match-priority order (MaskedJump is tried first, then
/// NoControlFlow, then DirectJump).
enum FusedSub : unsigned {
  FusedMaskedJump = 0,
  FusedNoControlFlow = 1,
  FusedDirectJump = 2
};

/// Run skipping only engages when the chain-start safe-byte class is
/// dense enough that runs actually occur; below this many safe byte
/// values the per-position class probe is pure overhead.
constexpr uint32_t RunSkipMinSafeBytes = 8;

/// The verify fast path's working set: the three policy DFAs fused into
/// one L1-resident 8-bit transition array (regex/FusedTables.h) plus
/// the per-byte chain-entry classes derived from the start-state rows.
///
/// SafeByte[b] is the *chain-safe* class — the self-loop byte set of
/// the virtual chain-start superstate: b is safe iff MaskedJump's first
/// transition on b is a reject AND NoControlFlow's first transition on
/// b is an accept. At any chain position whose byte is safe, the whole
/// Figure-5 step is decided by that byte alone: MaskedJump can never
/// match (dfaMatch dies on its first byte), NoControlFlow matches its
/// shortest prefix — exactly one byte — and DirectJump is never
/// consulted. The step is "NoControlFlow, length 1" for ANY suffix, so
/// a run of safe bytes can be scanned with wide loads and marked
/// wholesale without touching the DFA at all.
///
/// MjAliveByte[b] complements it on the slow side: b keeps the
/// MaskedJump attempt alive (only the few mask-prefix bytes do), so the
/// chain step can skip the whole MaskedJump walk for every other byte.
///
/// ExcByte[b] is the *chain-exceptional* class driving the verify inner
/// loop's branchless NoControlFlow sweep: b is exceptional iff a chain
/// step starting on it could resolve as anything but a NoControlFlow
/// match. Non-exceptional (ExcByte[b] == 0) means MaskedJump's and
/// DirectJump's first transitions on b both reject (or b is safe, where
/// the one-byte NoControlFlow accept outranks DirectJump in the
/// Figure-5 order), so the step's verdict is exactly "NoControlFlow
/// match or whole-chain fail" and the sweep may walk the NoControlFlow
/// DFA alone, restarting on accept without consulting the other two
/// tables. ExcByte[b] == 2 is the second-byte-resolvable subclass: b
/// keeps only DirectJump alive, landing it in the shared Exc2State,
/// and Exc2Dead[b1] tells whether the actual second byte kills it (the
/// two-byte opcode prefix 0F on the shipped tables: only 0F 8x is a
/// jump, every other second byte is ordinary NoControlFlow). A start
/// with ExcByte 2 and a dead second byte stays in the sweep; 1 means
/// the full chain must run.
///
/// All classes are exact, derived from the tables — never heuristic —
/// which is why the fused engine stays bit-identical to the legacy one.
struct FusedPolicy {
  re::FusedTables F;
  std::array<uint8_t, 256> SafeByte{};
  std::array<uint8_t, 256> MjAliveByte{};
  std::array<uint8_t, 256> ExcByte{};
  std::array<uint8_t, 256> Exc2Dead{};
  uint32_t SafeCount = 0;    ///< |SafeByte|
  uint32_t MjAliveCount = 0; ///< |MjAliveByte|
  uint32_t ExcCount = 0;     ///< bytes with ExcByte != 0
  uint32_t Exc2Count = 0;    ///< bytes with ExcByte == 2
  /// Fused DirectJump state every ExcByte==2 start byte lands in (the
  /// one Exc2Dead is derived from); MaxFusedStates when the class is
  /// empty.
  uint32_t Exc2State = re::MaxFusedStates;
  bool RunSkip = false;      ///< SafeCount >= RunSkipMinSafeBytes
};

/// Fuses \p T into the verify fast path's layout. Deterministic; pure
/// table preprocessing (roughly 20 KiB of writes — microseconds).
FusedPolicy buildFusedPolicy(const PolicyTables &T);

/// The fused form of policyTables(): the default x86 registry entry's
/// Fused member (core/TableRegistry.h). Fused at registration time
/// from the exact tables policyTables() returns — the two can never
/// disagree, even after an adoptPolicyTables(). The production
/// verifier entry points all drive this instance.
const FusedPolicy &fusedPolicyTables();

/// Builds the policy grammars in \p F. (Regexes are interned in F, so the
/// factory must outlive the result.)
PolicyGrammars buildPolicyGrammars(re::Factory &F);

/// Compiles the policy DFAs by raw derivative closure, without
/// minimization — the historical shipped form, kept for the
/// differential gate certifying that minimization changed no verdict.
PolicyTables buildPolicyTablesRaw();

/// Compiles the shipped policy DFAs: derivative closure followed by
/// Hopcroft minimization with canonical BFS numbering, so identical
/// grammars always produce bit-identical tables. Deterministic; called
/// once and cached by the verifier.
PolicyTables buildPolicyTables();

/// Returns the default x86 tables — the x86/"nacl" entry of the
/// process-wide core::TableRegistry: the adopted instance when
/// adoptPolicyTables() registered first, else a lazily built one.
const PolicyTables &policyTables();

/// Parses, structure-checks, and hash-verifies an RSTB blob (e.g. one
/// served by the verification service's tables endpoint). When
/// \p ExpectHashHex is non-empty the blob's content address must equal
/// it exactly. The blob's ISA / policy-set tags must match
/// \p ExpectIsa / \p ExpectPolicySet (pass the MIPS tags to load a
/// MIPS blob; the defaults reject anything that is not x86/nacl at the
/// header). Throws std::runtime_error on any mismatch or corruption.
PolicyTables loadPolicyTables(const std::vector<uint8_t> &Blob,
                              std::string_view ExpectHashHex = {},
                              std::string_view ExpectIsa = "x86",
                              std::string_view ExpectPolicySet = "nacl");

/// Registers \p T as the (Isa, PolicySet) entry of the table registry,
/// letting a process that obtained tables by blob skip the per-process
/// grammar rebuild entirely. Succeeds (returns true) when the key is
/// free, or when it is already bound to tables with the same canonical
/// content hash (idempotent). Throws std::runtime_error — it never
/// silently loses the race with first use — when a *different* table
/// set is already registered and in use under that key.
bool adoptPolicyTables(PolicyTables T, std::string_view Isa = "x86",
                       std::string_view PolicySet = "nacl");

/// Serializes \p T into the versioned "RSTB" binary format
/// (regex/TableIO.h) under the given identity tags, tables in the
/// fixed order NoControlFlow, DirectJump, MaskedJump. Byte-identical
/// for identical tables and tags. The one-argument form writes the
/// default x86/"nacl" tags.
std::vector<uint8_t> serializePolicyTables(const PolicyTables &T,
                                           std::string_view Isa,
                                           std::string_view PolicySet);
std::vector<uint8_t> serializePolicyTables(const PolicyTables &T);

/// Parses a blob produced by serializePolicyTables, re-verifying the
/// embedded content hash, structure, and identity tags (defaults
/// expect x86/"nacl"; pass other tags — or empty to accept any — for
/// other ISAs). Throws std::runtime_error on any corruption, tag
/// mismatch, or unexpected table names/order.
PolicyTables deserializePolicyTables(const std::vector<uint8_t> &Blob,
                                     std::string_view ExpectIsa = "x86",
                                     std::string_view ExpectPolicySet = "nacl");

/// The content-address (SHA-256, lowercase hex) of the serialized form
/// of \p T — the cache key CI pins against drift. The one-argument
/// form addresses the default x86/"nacl" serialization; the tagged
/// form addresses any ISA's.
std::string policyTableHashHex(const PolicyTables &T);
std::string policyTableHashHex(const PolicyTables &T, std::string_view Isa,
                               std::string_view PolicySet);

/// The form names included in NoControlFlow (exposed for the workload
/// generator, which emits only policy-legal instructions, and for tests).
const std::vector<std::string> &noControlFlowFormNames();

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_POLICY_H
