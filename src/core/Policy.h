//===- core/Policy.h - The NaCl sandbox policy grammars --------*- C++ -*-===//
///
/// \file
/// The declarative heart of RockSalt (paper section 3.2): the aligned
/// NaCl sandbox policy is captured by three grammars, reusing the decoder
/// DSL, and compiled offline to DFA tables. The verifier's trusted core
/// (core/Verifier.h) then consists of those tables plus a few tens of
/// lines of table-walking code.
///
///  * MaskedJump — the two-instruction "nacljmp": AND r, $-32 followed
///    immediately by JMP/CALL *r through the same register (ESP
///    excluded), transliterated from the paper's nacl_MASK_p /
///    nacl_JMP_p / nacl_CALL_p definitions;
///  * DirectJump — JMP rel8/rel32, Jcc rel8/rel32, CALL rel32;
///  * NoControlFlow — the legal straight-line instructions, with the
///    prefix discipline NaCl allows (operand-size override on data ops,
///    rep on string ops, lock on memory read-modify-writes; segment
///    overrides are always rejected).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_POLICY_H
#define ROCKSALT_CORE_POLICY_H

#include "regex/Dfa.h"
#include "x86/Grammars.h"

#include <string_view>

namespace rocksalt {
namespace core {

/// The bundle size of the aligned policy (the paper's 32).
constexpr uint32_t BundleSize = 32;

/// The mask immediate: AND r, 0xFFFFFFE0 keeps addresses bundle-aligned
/// (encoded as the sign-extended imm8 0xE0).
constexpr uint8_t SafeMaskByte = 0xE0;

/// Byte length of the jump half (JMP/CALL *r, FF /4 or FF /2) of a
/// masked-jump pair. The jump half is always the *last* two bytes of a
/// MaskedJump match, so its position is derived as (end of match) -
/// MaskedJumpHalfLen rather than (start of match) + (mask length) — the
/// mask half is free to grow without desynchronizing the PairJmp bitmap
/// (a guard test pins the current 3+2 shape).
constexpr uint32_t MaskedJumpHalfLen = 2;

/// The three policy grammars, still carrying semantic actions (useful for
/// the inversion-principle tests), plus their stripped regexes.
struct PolicyGrammars {
  gram::Grammar<x86::Instr> NoControlFlow;
  /// MaskedJump spans two instructions, so its semantic value is the pair
  /// (mask, jump); we expose only the stripped regex plus a recognizer.
  re::Regex NoControlFlowRe = nullptr;
  re::Regex DirectJumpRe = nullptr;
  re::Regex MaskedJumpRe = nullptr;
};

/// The generated DFA tables the trusted verifier core consumes.
struct PolicyTables {
  re::Dfa NoControlFlow;
  re::Dfa DirectJump;
  re::Dfa MaskedJump;
};

/// Exact state counts of the shipped (minimized, canonically
/// BFS-numbered) tables. Tests pin against these names rather than
/// magic numbers; buildPolicyTables() asserts them, so a grammar edit
/// that changes a table size fails loudly in one place.
constexpr uint32_t NoControlFlowStates = 42;
constexpr uint32_t DirectJumpStates = 8;
constexpr uint32_t MaskedJumpStates = 25;

/// Builds the policy grammars in \p F. (Regexes are interned in F, so the
/// factory must outlive the result.)
PolicyGrammars buildPolicyGrammars(re::Factory &F);

/// Compiles the policy DFAs by raw derivative closure, without
/// minimization — the historical shipped form, kept for the
/// differential gate certifying that minimization changed no verdict.
PolicyTables buildPolicyTablesRaw();

/// Compiles the shipped policy DFAs: derivative closure followed by
/// Hopcroft minimization with canonical BFS numbering, so identical
/// grammars always produce bit-identical tables. Deterministic; called
/// once and cached by the verifier.
PolicyTables buildPolicyTables();

/// Returns the shared process-wide tables: the adopted instance when
/// adoptPolicyTables() ran first, else a lazily built one.
const PolicyTables &policyTables();

/// Parses, structure-checks, and hash-verifies an RSTB blob (e.g. one
/// served by the verification service's tables endpoint). When
/// \p ExpectHashHex is non-empty the blob's content address must equal
/// it exactly. Throws std::runtime_error on any mismatch or corruption.
PolicyTables loadPolicyTables(const std::vector<uint8_t> &Blob,
                              std::string_view ExpectHashHex = {});

/// Installs \p T as the shared instance policyTables() serves, letting
/// a process that obtained tables by blob skip the per-process grammar
/// rebuild entirely. Must run before the first policyTables() use:
/// returns false (and changes nothing) when the shared instance has
/// already materialized.
bool adoptPolicyTables(PolicyTables T);

/// Serializes \p T into the versioned "RSTB" binary format
/// (regex/TableIO.h), tables in the fixed order NoControlFlow,
/// DirectJump, MaskedJump. Byte-identical for identical tables.
std::vector<uint8_t> serializePolicyTables(const PolicyTables &T);

/// Parses a blob produced by serializePolicyTables, re-verifying the
/// embedded content hash and structure. Throws std::runtime_error on
/// any corruption or on unexpected table names/order.
PolicyTables deserializePolicyTables(const std::vector<uint8_t> &Blob);

/// The content-address (SHA-256, lowercase hex) of the serialized form
/// of \p T — the cache key CI pins against drift.
std::string policyTableHashHex(const PolicyTables &T);

/// The form names included in NoControlFlow (exposed for the workload
/// generator, which emits only policy-legal instructions, and for tests).
const std::vector<std::string> &noControlFlowFormNames();

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_POLICY_H
