//===- core/NcfSweep.h - The branchless NoControlFlow sweep ----*- C++ -*-===//
///
/// \file
/// The verify inner loop's fast lane, shared by the sequential entry
/// points (core/Verifier.cpp) and the per-shard scan (core/Shard.cpp):
/// from a chain position whose byte is non-exceptional, stream bytes
/// through the fused table — one load per byte; restart rows
/// (regex/FusedTables.cpp pass 4) make instruction-boundary restarts
/// free — recording instruction starts through a caller-supplied sink.
/// Exact: a non-exceptional start byte kills MaskedJump's and (modulo
/// the safe-byte accept priority) DirectJump's first transitions, so
/// the full Figure-5 step IS the NoControlFlow verdict there; the
/// sweep hands back to the full chain at the first hard-exceptional
/// start byte. Skip chains are deliberately not consulted: their
/// data-dependent branch costs more than the payload loads they save
/// once the restart is free. DESIGN.md section 15.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_NCFSWEEP_H
#define ROCKSALT_CORE_NCFSWEEP_H

#include "core/Policy.h"

namespace rocksalt {
namespace core {
namespace detail {

/// How the sweep stopped.
enum class SweepStop {
  ExcStart, ///< at a hard-exceptional instruction start (*Pos points at it)
  Bound,    ///< at an instruction start >= Limit (*Pos points at it)
  CleanEnd, ///< consumed the image with the last instruction complete
  Fail      ///< chain fail: NoControlFlow rejected or the image ended
            ///< mid-instruction, from a non-exceptional start
};

/// Walks the NoControlFlow DFA from \p *Pos (which must be a chain
/// position whose byte has ExcByte != 1), calling
/// `Mark(Q, IsStart)` for every byte consumed — IsStart is 1 exactly
/// at instruction starts — until a hard-exceptional start, an
/// instruction start at or past \p Limit, the end of the image, or a
/// chain fail. Instructions may straddle \p Limit; the sweep only
/// *stops* at starts, mirroring the Figure-5 loop's `Pos < Limit`
/// condition. On ExcStart/Bound, *Pos is the stopping start; on
/// CleanEnd, *Pos == Size. On Fail, *Pos is the failing instruction's
/// start when \p TrackFailStart is set (the per-shard scan records it
/// as StopPos, pinned against the legacy engine), untouched otherwise
/// (the sequential callers only need the verdict).
template <bool TrackFailStart, typename MarkFn>
SweepStop ncfSweepImpl(const FusedPolicy &P, const uint8_t *Code,
                       uint32_t Size, uint32_t Limit, uint32_t *Pos,
                       MarkFn Mark) {
  const re::FusedTables &F = P.F;
  const uint8_t *Tr = F.Trans.data();
  const uint8_t *Exc = P.ExcByte.data();
  const uint8_t *Exc2 = P.Exc2Dead.data();
  const uint32_t AcceptBase = F.AcceptBase, RejectBase = F.RejectBase;
  uint32_t S = F.Starts[FusedNoControlFlow];
  uint32_t Q = *Pos;
  uint8_t IsStart = 1;
  uint32_t LastStart = Q;

  while (Q < Size) {
    uint8_t B = Code[Q];
    uint8_t E = Exc[B];
    // Second-byte escape, computed branchlessly so the common 0F-start
    // stays on the fall-through path: a DirectJump-only start whose
    // actual second byte kills the jump (0F followed by anything but
    // 8x) is still a pure NoControlFlow step. The escape peek indexes
    // Code[Q] when no next byte exists — in bounds, and the escape is
    // masked off in that case.
    uint32_t HasNext = Q + 1 < Size;
    uint8_t NextDead = uint8_t(Exc2[Code[Q + HasNext]] & HasNext);
    uint8_t Escape = uint8_t((E == 2) & NextDead);
    uint8_t HardExc = uint8_t(uint8_t(E != 0) & uint8_t(Escape ^ 1));
    if (IsStart & (HardExc | uint8_t(Q >= Limit))) {
      *Pos = Q;
      return Q >= Limit ? SweepStop::Bound : SweepStop::ExcStart;
    }
    if constexpr (TrackFailStart)
      LastStart ^= (LastStart ^ Q) & (0u - uint32_t(IsStart));
    Mark(Q, IsStart);
    // Accept rows are restart rows, so this one load advances THROUGH
    // instruction boundaries; the accept test only feeds the off-chain
    // IsStart flag.
    S = Tr[(S << 8) | B];
    if (S >= RejectBase) {
      if constexpr (TrackFailStart)
        *Pos = LastStart;
      return SweepStop::Fail;
    }
    IsStart = uint8_t(S >= AcceptBase);
    ++Q;
  }
  *Pos = Q;
  if (IsStart)
    return SweepStop::CleanEnd;
  if constexpr (TrackFailStart)
    *Pos = LastStart;
  return SweepStop::Fail;
}

} // namespace detail
} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_NCFSWEEP_H
