//===- core/Shard.cpp - Chunk-parallel scan and seam-aware merge ----------===//
//
// The per-shard scan is the Figure-5 loop verbatim, started at a bundle
// boundary; the merge replays the shards in chain order and re-checks
// seams the chain crossed mid-instruction. See Shard.h for why this is
// bit-identical to the sequential checker.
//
//===----------------------------------------------------------------------===//

#include "core/Shard.h"

#include "core/NcfSweep.h"

using namespace rocksalt;
using namespace rocksalt::core;

void core::scanShard(const PolicyTables &T, const uint8_t *Code, uint32_t Size,
                     ShardScan &S) {
  uint32_t Pos = S.Begin;
  while (Pos < S.End) {
    S.ValidPos.push_back(Pos);
    uint32_t Dest = 0;
    switch (verifyStep(T, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
      // Jump half = last two bytes of the match (see MaskedJumpHalfLen).
      S.PairJmpPos.push_back(Pos - MaskedJumpHalfLen);
      break;
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      S.TargetPos.push_back(Dest);
      break;
    case StepKind::Fail:
      S.Failed = true;
      S.StopPos = Pos;
      return;
    }
  }
  S.StopPos = Pos;
}

void core::scanShard(const FusedPolicy &P, const uint8_t *Code, uint32_t Size,
                     ShardScan &S) {
  uint32_t Pos = S.Begin;
  // ValidPos is written through a branchless cursor shared by all three
  // lanes, so allocate its upper bound once: at most one start per byte
  // of [Begin, End), plus one slot absorbing the sweep's dead writes
  // for an instruction straddling S.End (the cursor stops advancing at
  // mid-instruction bytes, so they all land just past the last start).
  S.ValidPos.resize(size_t(S.End - S.Begin) + 1);
  uint32_t *Dst = S.ValidPos.data();
  size_t N = 0;
  while (Pos < S.End) {
    // Run skipping, clamped to the shard limit: each safe byte is a
    // one-byte NoControlFlow step for any suffix, so the fresh chain
    // marks every position in the run and — when the run reaches S.End
    // — stops exactly at S.End, just like the per-byte scan.
    if (P.RunSkip && P.SafeByte[Code[Pos]]) {
      uint32_t RunEnd = safeRunEnd(P, Code, Pos, S.End);
      for (uint32_t Q = Pos; Q < RunEnd; ++Q)
        Dst[N++] = Q;
      Pos = RunEnd;
      continue;
    }
    // The branchless NoControlFlow sweep (core/NcfSweep.h): every start
    // it records lies in [Pos, S.End) — it stops at starts past the
    // limit — and it records no targets or pair jumps (non-exceptional
    // steps are NoControlFlow matches by construction), so the scan
    // lists stay identical to the per-step loop's.
    if (P.ExcByte[Code[Pos]] != 1) {
      detail::SweepStop St = detail::ncfSweepImpl<true>(
          P, Code, Size, S.End, &Pos, [Dst, &N](uint32_t Q, uint8_t IsStart) {
            Dst[N] = Q;
            N += IsStart;
          });
      switch (St) {
      case detail::SweepStop::ExcStart:
        break; // full chain handles the exceptional start below
      case detail::SweepStop::Bound:
      case detail::SweepStop::CleanEnd:
        continue; // Pos >= S.End (or == Size): outer loop exits
      case detail::SweepStop::Fail:
        S.Failed = true;
        S.StopPos = Pos; // the failing instruction's start
        S.ValidPos.resize(N);
        return;
      }
    }
    Dst[N++] = Pos;
    uint32_t Dest = 0;
    switch (verifyStep(P, Code, &Pos, Size, &Dest)) {
    case StepKind::MaskedJump:
      S.PairJmpPos.push_back(Pos - MaskedJumpHalfLen);
      break;
    case StepKind::NoControlFlow:
      break;
    case StepKind::DirectJump:
      S.TargetPos.push_back(Dest);
      break;
    case StepKind::Fail:
      S.Failed = true;
      S.StopPos = Pos;
      S.ValidPos.resize(N);
      return;
    }
  }
  S.StopPos = Pos;
  S.ValidPos.resize(N);
#if defined(__GNUC__)
  // Seam prefetch: when the same worker goes on to scan (or the merge
  // goes on to replay) the adjacent shard, its first line is already
  // inbound.
  if (S.End < Size)
    __builtin_prefetch(Code + S.End);
#endif
}

void core::partitionShards(uint32_t Size, uint32_t NumShards,
                           std::vector<ShardScan> &Shards) {
  uint32_t Bundles = (Size + BundleSize - 1) / BundleSize;
  uint32_t N = NumShards < 1 ? 1 : NumShards;
  if (N > Bundles)
    N = Bundles; // zero for an empty image
  Shards.resize(N);

  uint32_t PerShard = N ? Bundles / N : 0;
  uint32_t Extra = N ? Bundles % N : 0;
  uint32_t Base = 0;
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Take = PerShard + (I < Extra ? 1 : 0);
    uint32_t End = Base + Take * BundleSize;
    if (End > Size || I + 1 == N)
      End = Size;
    Shards[I].reset(Base, End);
    Base = End;
  }
}

CheckResult core::mergeShardScans(const PolicyTables &T, const uint8_t *Code,
                                  uint32_t Size,
                                  const std::vector<ShardScan> &Shards,
                                  uint64_t *SeamRescans) {
  std::vector<const ShardScan *> Ptrs;
  Ptrs.reserve(Shards.size());
  for (const ShardScan &S : Shards)
    Ptrs.push_back(&S);
  return mergeShardScans(T, Code, Size, Ptrs.data(), Ptrs.size(), SeamRescans);
}

CheckResult core::mergeShardScans(const FusedPolicy &P, const uint8_t *Code,
                                  uint32_t Size,
                                  const std::vector<ShardScan> &Shards,
                                  uint64_t *SeamRescans) {
  std::vector<const ShardScan *> Ptrs;
  Ptrs.reserve(Shards.size());
  for (const ShardScan &S : Shards)
    Ptrs.push_back(&S);
  return mergeShardScans(P, Code, Size, Ptrs.data(), Ptrs.size(), SeamRescans);
}

namespace {

// One merge body serves both engines: verifyStep is overloaded on the
// table type, so the seam re-check resolves to whichever engine the
// caller merges with.
template <typename Engine>
CheckResult mergeImpl(const Engine &T, const uint8_t *Code, uint32_t Size,
                      const ShardScan *const *Shards, size_t NumShards,
                      uint64_t *SeamRescans) {
  CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  uint32_t Pos = 0;
  size_t I = 0;
  const size_t N = NumShards;

  while (Pos < Size) {
    if (I < N && Shards[I]->Begin == Pos) {
      // In sync: this shard's fresh scan is the sequential chain.
      const ShardScan &S = *Shards[I++];
      for (uint32_t P : S.ValidPos)
        R.Valid[P] = 1;
      for (uint32_t P : S.TargetPos)
        R.Target[P] = 1;
      for (uint32_t P : S.PairJmpPos)
        R.PairJmp[P] = 1;
      if (S.Failed) {
        R.Ok = false;
        R.Reason = RejectReason::NoParse;
        return R;
      }
      Pos = S.StopPos;
    } else {
      // Seam re-check: the chain crossed a shard base mid-instruction,
      // so downstream fresh scans are desynchronized. Step the
      // sequential chain until it lands exactly on a later shard base.
      if (SeamRescans)
        ++*SeamRescans;
      R.Valid[Pos] = 1;
      uint32_t Dest = 0;
      switch (verifyStep(T, Code, &Pos, Size, &Dest)) {
      case StepKind::MaskedJump:
        R.PairJmp[Pos - MaskedJumpHalfLen] = 1;
        break;
      case StepKind::NoControlFlow:
        break;
      case StepKind::DirectJump:
        R.Target[Dest] = 1;
        break;
      case StepKind::Fail:
        R.Ok = false;
        R.Reason = RejectReason::NoParse;
        return R;
      }
    }
    // Shards the chain has overrun contain desynchronized results.
    while (I < N && Shards[I]->Begin < Pos)
      ++I;
  }

  finalizeCheck(R);
  return R;
}

} // namespace

CheckResult core::mergeShardScans(const PolicyTables &T, const uint8_t *Code,
                                  uint32_t Size,
                                  const ShardScan *const *Shards,
                                  size_t NumShards, uint64_t *SeamRescans) {
  return mergeImpl(T, Code, Size, Shards, NumShards, SeamRescans);
}

CheckResult core::mergeShardScans(const FusedPolicy &P, const uint8_t *Code,
                                  uint32_t Size,
                                  const ShardScan *const *Shards,
                                  size_t NumShards, uint64_t *SeamRescans) {
  return mergeImpl(P, Code, Size, Shards, NumShards, SeamRescans);
}
