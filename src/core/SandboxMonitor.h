//===- core/SandboxMonitor.h - Safety theorem as a monitor -----*- C++ -*-===//
///
/// \file
/// The paper's correctness theorem (section 4), recast as a runtime
/// monitor: for checker-accepted code, every reachable state must be
/// "appropriate" (Definition 1 — segments unchanged, code bytes
/// unchanged, PC inside the code segment) and "locally safe or the
/// second half of a masked-jump pair" (Definitions 2-3, the k-safety
/// argument with k <= 2). Property tests drive thousands of generated
/// binaries through the monitor; any violation on accepted code would be
/// a checker soundness bug.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_SANDBOXMONITOR_H
#define ROCKSALT_CORE_SANDBOXMONITOR_H

#include "core/Verifier.h"
#include "sem/Cpu.h"

#include <optional>
#include <string>

namespace rocksalt {
namespace core {

class SandboxMonitor {
public:
  struct Violation {
    uint64_t Step = 0;
    std::string What;
  };

  /// Attaches to \p C (installing a write hook) for code loaded at
  /// physical [CodeBase, CodeBase+CodeSize) with the checker's \p R.
  SandboxMonitor(sem::Cpu &C, CheckResult R, uint32_t CodeBase,
                 uint32_t CodeSize);

  /// Runs up to \p MaxSteps instructions, checking the invariants after
  /// every step. Returns the first violation, or std::nullopt if the run
  /// stayed safe (including safe terminal states).
  std::optional<Violation> runMonitored(uint64_t MaxSteps);

  uint64_t stepsExecuted() const { return Steps; }

private:
  sem::Cpu &Cpu;
  CheckResult Check;
  uint32_t CodeBase, CodeSize;
  uint64_t Steps = 0;

  // Initial-state snapshot (Definition 1).
  uint16_t SegVal0[6];
  uint32_t SegBase0[6], SegLimit0[6];

  std::optional<Violation> PendingWriteViolation;

  std::optional<std::string> checkInvariants() const;
};

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_SANDBOXMONITOR_H
