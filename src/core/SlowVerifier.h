//===- core/SlowVerifier.h - Theorem-prover-shaped baseline ----*- C++ -*-===//
///
/// \file
/// A deliberately naive verifier reproducing the *shape* of Zhao et
/// al.'s ARMor (paper section 1): instead of precompiled DFA tables, it
/// symbolically re-derives the policy per instruction — rebuilding the
/// policy grammars in a fresh factory and matching by regex derivatives
/// for every instruction it checks, the way a proof assistant replays a
/// verification-condition proof. Decision-equivalent to RockSalt, but
/// orders of magnitude slower; the bench_slow_verifier harness measures
/// the throughput gap (the paper reports ~2.5 h for 300 instructions vs
/// ~1M instructions/second).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_SLOWVERIFIER_H
#define ROCKSALT_CORE_SLOWVERIFIER_H

#include "core/Policy.h"

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace core {

/// Verifies the image, re-deriving the policy per instruction. When
/// \p InstrCount is non-null it receives the number of instructions
/// checked (for throughput reporting).
bool slowVerify(const uint8_t *Code, uint32_t Size,
                uint64_t *InstrCount = nullptr);

inline bool slowVerify(const std::vector<uint8_t> &Code,
                       uint64_t *InstrCount = nullptr) {
  return slowVerify(Code.data(), static_cast<uint32_t>(Code.size()),
                    InstrCount);
}

/// The same decision procedure with the theatrics amortized: the policy
/// grammars are derived once into a persistent factory and matching still
/// happens by on-line Brzozowski derivatives (never the compiled DFA
/// tables), so this remains an independent verdict path from the RockSalt
/// checker — the factory's per-node derivative caches just make repeated
/// matching run at lazy-DFA speed. This is what lets the differential
/// fuzz oracle afford the slow path on every image. Decision-equivalent
/// to slowVerify on every input. Not thread-safe (the caches mutate);
/// use one instance per thread.
class SlowContext {
  re::Factory F;
  PolicyGrammars P;

public:
  SlowContext();

  bool verify(const uint8_t *Code, uint32_t Size,
              uint64_t *InstrCount = nullptr);
  bool verify(const std::vector<uint8_t> &Code,
              uint64_t *InstrCount = nullptr) {
    return verify(Code.data(), static_cast<uint32_t>(Code.size()),
                  InstrCount);
  }
};

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_SLOWVERIFIER_H
