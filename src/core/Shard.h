//===- core/Shard.h - Chunk-parallel scan and seam-aware merge -*- C++ -*-===//
///
/// \file
/// The aligned-chunk policy makes the Figure-5 scan embarrassingly
/// parallel: in any *accepted* image every 32-byte boundary is an
/// instruction start (that is exactly the bundle check of Figure 5), so
/// a scan started fresh at a bundle-aligned shard base follows the same
/// match chain the sequential verifier would. Each shard is scanned
/// independently (`scanShard`) and the per-shard results are joined
/// sequentially (`mergeShardScans`).
///
/// Rejected images are where the care goes: the sequential chain may
/// cross a shard seam mid-instruction, in which case the downstream
/// shard's fresh scan diverges from the sequential one. The merge
/// detects this (the consumed shard's stop position overshoots the next
/// shard base) and falls back to re-running `verifyStep` from the exact
/// overshoot position until the chain re-synchronizes with a later shard
/// base, discarding the desynchronized shards' results. The result is
/// therefore *bit-identical* to `RockSalt::check` — same verdict, same
/// Valid/Target/PairJmp bitmaps, same reject reason — on every input,
/// which is what keeps the paper's soundness argument intact: the
/// parallel service is an implementation of the same checker function,
/// not a new checker.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_CORE_SHARD_H
#define ROCKSALT_CORE_SHARD_H

#include "core/Verifier.h"

#include <cstdint>
#include <vector>

namespace rocksalt {
namespace core {

/// The result of scanning one shard [Begin, End) of an image. The
/// vectors are position lists (not bitmaps) so a shard's footprint is
/// proportional to the code it scanned, and they retain capacity across
/// `reset` so steady-state scans allocate nothing.
struct ShardScan {
  uint32_t Begin = 0; ///< shard base, a multiple of BundleSize
  uint32_t End = 0;   ///< shard limit (next base, or image size)
  /// First chain position >= End (success), or the failing position.
  uint32_t StopPos = 0;
  bool Failed = false; ///< no grammar matched at StopPos

  std::vector<uint32_t> ValidPos;   ///< chain positions, ascending
  std::vector<uint32_t> TargetPos;  ///< absolute direct-jump targets
  std::vector<uint32_t> PairJmpPos; ///< jump halves of masked pairs

  void reset(uint32_t B, uint32_t E) {
    Begin = B;
    End = E;
    StopPos = B;
    Failed = false;
    ValidPos.clear();
    TargetPos.clear();
    PairJmpPos.clear();
  }
};

/// Runs the Figure-5 chain from S.Begin while the position is < S.End;
/// a final match may overrun past End (StopPos records where the chain
/// actually stopped). Marks exactly the positions the sequential scan
/// would mark on the same chain, including Valid at a failing position.
void scanShard(const PolicyTables &T, const uint8_t *Code, uint32_t Size,
               ShardScan &S);

/// Fused-engine shard scan: identical positions and stop behavior to
/// the legacy overload, with the run-skipping fast path for safe-byte
/// runs (clamped to S.End — each safe byte is a one-byte step, so the
/// fresh chain stops exactly where the per-byte scan would) and a
/// prefetch of the next shard's first line across the seam. Wide loads
/// never read at or past S.End, so the chunk cache's scan-window
/// contract (incr/ChunkCache.h) is untouched.
void scanShard(const FusedPolicy &P, const uint8_t *Code, uint32_t Size,
               ShardScan &S);

/// Splits [0, Size) into \p NumShards bundle-aligned shards, filling
/// \p Shards (reusing its elements' buffers). The actual count may be
/// lower for small images; every shard is non-empty.
void partitionShards(uint32_t Size, uint32_t NumShards,
                     std::vector<ShardScan> &Shards);

/// The sequential join: replays the shard chain in order, re-checking
/// seams where a shard's chain overran its limit (masked-jump pairs or
/// direct jumps straddling a shard boundary) by stepping `verifyStep`
/// from the overshoot position until it lands exactly on a later shard
/// base. Produces a CheckResult bit-identical to `RockSalt::check`.
/// \p SeamRescans, when non-null, is incremented once per verifyStep
/// executed during seam re-checking (a service metric).
CheckResult mergeShardScans(const PolicyTables &T, const uint8_t *Code,
                            uint32_t Size, const std::vector<ShardScan> &Shards,
                            uint64_t *SeamRescans = nullptr);

/// Pointer-span form of the join above: the shards live wherever the
/// caller keeps them (the incremental verifier merges a mix of cached
/// and freshly scanned chunks held behind shared_ptrs). Identical
/// semantics; the vector overload delegates here.
CheckResult mergeShardScans(const PolicyTables &T, const uint8_t *Code,
                            uint32_t Size, const ShardScan *const *Shards,
                            size_t NumShards, uint64_t *SeamRescans = nullptr);

/// Fused-engine joins: same seam-aware replay, with seam re-checks
/// stepping the fused verifyStep. Mixing engines between scan and merge
/// is fine — both produce the sequential chain's positions.
CheckResult mergeShardScans(const FusedPolicy &P, const uint8_t *Code,
                            uint32_t Size, const std::vector<ShardScan> &Shards,
                            uint64_t *SeamRescans = nullptr);
CheckResult mergeShardScans(const FusedPolicy &P, const uint8_t *Code,
                            uint32_t Size, const ShardScan *const *Shards,
                            size_t NumShards, uint64_t *SeamRescans = nullptr);

} // namespace core
} // namespace rocksalt

#endif // ROCKSALT_CORE_SHARD_H
