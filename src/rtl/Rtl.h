//===- rtl/Rtl.h - The RTL core language -----------------------*- C++ -*-===//
///
/// \file
/// The register-transfer-list DSL of paper section 2.3: a small RISC-like
/// language for computing with bit-vectors, parameterized by the machine
/// state (here instantiated for the x86: eight GPRs, six segment
/// registers with base and limit, nine flags, the PC, and byte-addressed
/// memory). x86 instructions are given meaning by translation to RTL
/// sequences (sem/Translate.h), which the interpreter (rtl/Interp.h)
/// executes.
///
/// Instructions operate on an unbounded file of local variables holding
/// width-indexed bit-vectors. Every instruction may carry a 1-bit guard
/// variable; a guarded instruction is skipped when the guard is 0. This
/// subsumes the paper's if-guarded RTL and keeps sequences straight-line.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_RTL_RTL_H
#define ROCKSALT_RTL_RTL_H

#include <cstdint>
#include <string>
#include <vector>

namespace rocksalt {
namespace rtl {

/// x86 flag indices (in the order of the low EFLAGS bits).
enum class Flag : uint8_t { CF, PF, AF, ZF, SF, TF, IF, DF, OF };
constexpr unsigned NumFlags = 9;

/// A machine location: the "loc" of Figure 3.
struct Loc {
  enum class Kind : uint8_t {
    PC,       ///< 32-bit program counter
    Reg,      ///< 32-bit GPR, Index 0..7 (x86 encoding order)
    SegVal,   ///< 16-bit segment selector value, Index 0..5
    SegBase,  ///< 32-bit segment base, Index 0..5
    SegLimit, ///< 32-bit segment limit, Index 0..5
    Flag      ///< 1-bit flag, Index per rtl::Flag
  };
  Kind K = Kind::PC;
  uint8_t Index = 0;

  static Loc pc() { return {Kind::PC, 0}; }
  static Loc reg(uint8_t R) { return {Kind::Reg, R}; }
  static Loc segVal(uint8_t S) { return {Kind::SegVal, S}; }
  static Loc segBase(uint8_t S) { return {Kind::SegBase, S}; }
  static Loc segLimit(uint8_t S) { return {Kind::SegLimit, S}; }
  static Loc flag(Flag F) { return {Kind::Flag, static_cast<uint8_t>(F)}; }

  /// The bit width of values stored at this location.
  uint32_t width() const {
    switch (K) {
    case Kind::SegVal:
      return 16;
    case Kind::Flag:
      return 1;
    default:
      return 32;
    }
  }

  bool operator==(const Loc &O) const { return K == O.K && Index == O.Index; }
};

/// Two-operand bit-vector operators.
enum class ArithOp : uint8_t {
  Add, Sub, Mul, Divu, Divs, Modu, Mods,
  And, Or, Xor, Shl, Shru, Shrs, Rol, Ror
};

/// Comparison operators (1-bit results).
enum class TestOp : uint8_t { Eq, Ltu, Lts };

/// Index of a local variable.
using Var = uint32_t;
constexpr Var NoVar = ~Var(0);

/// One RTL instruction. A flat tagged struct: only the fields relevant to
/// the Kind are meaningful.
struct RtlInstr {
  enum class Kind : uint8_t {
    Arith,   ///< Dst := Src1 AOp Src2
    Test,    ///< Dst := Src1 TOp Src2 (1 bit)
    Imm,     ///< Dst := ImmVal : Width
    GetLoc,  ///< Dst := load Location
    SetLoc,  ///< store Location := Src1
    GetByte, ///< Dst := Mem[Seg:Src1] (8 bits)
    SetByte, ///< Mem[Seg:Src1] := Src2 (8 bits)
    CastU,   ///< Dst := zero-extend/truncate Src1 to Width
    CastS,   ///< Dst := sign-extend/truncate Src1 to Width
    Select,  ///< Dst := Src1(1 bit) ? Src2 : Src3
    Choose,  ///< Dst := oracle bits : Width (non-determinism)
    Error,   ///< model error (undefined behavior reached)
    Fault,   ///< hardware fault (#DE etc.): safe stop
    Trap     ///< safe stop (e.g. HLT)
  };

  Kind K = Kind::Error;
  ArithOp AOp = ArithOp::Add;
  TestOp TOp = TestOp::Eq;
  Var Dst = NoVar;
  Var Src1 = NoVar;
  Var Src2 = NoVar;
  Var Src3 = NoVar;
  uint32_t Width = 32;
  uint64_t ImmVal = 0;
  Loc Location;
  uint8_t Seg = 0;
  /// 1-bit guard variable; the instruction is a no-op when it holds 0.
  Var Guard = NoVar;

  static RtlInstr arith(ArithOp Op, Var Dst, Var A, Var B) {
    RtlInstr I;
    I.K = Kind::Arith;
    I.AOp = Op;
    I.Dst = Dst;
    I.Src1 = A;
    I.Src2 = B;
    return I;
  }
  static RtlInstr test(TestOp Op, Var Dst, Var A, Var B) {
    RtlInstr I;
    I.K = Kind::Test;
    I.TOp = Op;
    I.Dst = Dst;
    I.Src1 = A;
    I.Src2 = B;
    return I;
  }
  static RtlInstr imm(Var Dst, uint32_t Width, uint64_t V) {
    RtlInstr I;
    I.K = Kind::Imm;
    I.Dst = Dst;
    I.Width = Width;
    I.ImmVal = V;
    return I;
  }
  static RtlInstr getLoc(Var Dst, Loc L) {
    RtlInstr I;
    I.K = Kind::GetLoc;
    I.Dst = Dst;
    I.Location = L;
    return I;
  }
  static RtlInstr setLoc(Loc L, Var Src) {
    RtlInstr I;
    I.K = Kind::SetLoc;
    I.Location = L;
    I.Src1 = Src;
    return I;
  }
  static RtlInstr getByte(Var Dst, uint8_t Seg, Var Addr) {
    RtlInstr I;
    I.K = Kind::GetByte;
    I.Dst = Dst;
    I.Seg = Seg;
    I.Src1 = Addr;
    return I;
  }
  static RtlInstr setByte(uint8_t Seg, Var Addr, Var Val) {
    RtlInstr I;
    I.K = Kind::SetByte;
    I.Seg = Seg;
    I.Src1 = Addr;
    I.Src2 = Val;
    return I;
  }
  static RtlInstr castU(Var Dst, uint32_t Width, Var Src) {
    RtlInstr I;
    I.K = Kind::CastU;
    I.Dst = Dst;
    I.Width = Width;
    I.Src1 = Src;
    return I;
  }
  static RtlInstr castS(Var Dst, uint32_t Width, Var Src) {
    RtlInstr I;
    I.K = Kind::CastS;
    I.Dst = Dst;
    I.Width = Width;
    I.Src1 = Src;
    return I;
  }
  static RtlInstr select(Var Dst, Var Cond, Var A, Var B) {
    RtlInstr I;
    I.K = Kind::Select;
    I.Dst = Dst;
    I.Src1 = Cond;
    I.Src2 = A;
    I.Src3 = B;
    return I;
  }
  static RtlInstr choose(Var Dst, uint32_t Width) {
    RtlInstr I;
    I.K = Kind::Choose;
    I.Dst = Dst;
    I.Width = Width;
    return I;
  }
  static RtlInstr error() {
    RtlInstr I;
    I.K = Kind::Error;
    return I;
  }
  static RtlInstr fault() {
    RtlInstr I;
    I.K = Kind::Fault;
    return I;
  }
  static RtlInstr trap() {
    RtlInstr I;
    I.K = Kind::Trap;
    return I;
  }

  RtlInstr withGuard(Var G) const {
    RtlInstr I = *this;
    I.Guard = G;
    return I;
  }
};

/// A translated instruction body.
using RtlProgram = std::vector<RtlInstr>;

/// Renders an RTL instruction for diagnostics.
std::string printRtl(const RtlInstr &I);
std::string printRtlProgram(const RtlProgram &P);

} // namespace rtl
} // namespace rocksalt

#endif // ROCKSALT_RTL_RTL_H
