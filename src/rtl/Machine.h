//===- rtl/Machine.h - RTL machine state -----------------------*- C++ -*-===//
///
/// \file
/// The RTL machine state (paper section 2.4): the x86 locations, a byte
/// memory, an execution status, and the oracle bit stream backing the
/// `choose` operation. The segmented memory model is the one 32-bit NaCl
/// relies on (section 3): every access goes through a segment register
/// carrying a base and a limit, and an out-of-limit offset faults —
/// faulting is a *safe* terminal state.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_RTL_MACHINE_H
#define ROCKSALT_RTL_MACHINE_H

#include "rtl/Rtl.h"
#include "support/Bitvec.h"
#include "support/Memory.h"
#include "support/Oracle.h"

#include <cstdint>
#include <functional>

namespace rocksalt {
namespace rtl {

/// Execution status of the machine.
enum class Status : uint8_t {
  Running, ///< normal
  Fault,   ///< hardware fault (segment violation, #DE): safe stop
  Halted,  ///< trap/HLT: safe stop
  Error    ///< model error (undefined encoding/behavior reached)
};

/// Hooks fired by the interpreter on physical memory accesses; used by
/// the sandbox monitor and by tests asserting the containment policy.
struct AccessHooks {
  std::function<void(uint32_t /*Phys*/, uint8_t /*Seg*/)> OnRead;
  std::function<void(uint32_t /*Phys*/, uint8_t /*Val*/, uint8_t /*Seg*/)>
      OnWrite;
};

/// The full machine state.
class MachineState {
public:
  uint32_t Regs[8] = {};
  uint16_t SegVal[6] = {};
  uint32_t SegBase[6] = {};
  uint32_t SegLimit[6] = {};
  bool Flags[NumFlags] = {};
  uint32_t Pc = 0;
  Memory Mem;
  Status St = Status::Running;
  Oracle Orc;

  MachineState() = default;
  explicit MachineState(uint64_t OracleSeed) : Orc(OracleSeed) {}

  /// Reads a location as a width-correct bit-vector.
  Bitvec get(const Loc &L) const {
    switch (L.K) {
    case Loc::Kind::PC:
      return Bitvec(32, Pc);
    case Loc::Kind::Reg:
      return Bitvec(32, Regs[L.Index]);
    case Loc::Kind::SegVal:
      return Bitvec(16, SegVal[L.Index]);
    case Loc::Kind::SegBase:
      return Bitvec(32, SegBase[L.Index]);
    case Loc::Kind::SegLimit:
      return Bitvec(32, SegLimit[L.Index]);
    case Loc::Kind::Flag:
      return Bitvec(1, Flags[L.Index]);
    }
    return Bitvec(1, 0);
  }

  /// Writes a location; the value width must match the location width.
  void set(const Loc &L, const Bitvec &V) {
    switch (L.K) {
    case Loc::Kind::PC:
      Pc = static_cast<uint32_t>(V.bits());
      return;
    case Loc::Kind::Reg:
      Regs[L.Index] = static_cast<uint32_t>(V.bits());
      return;
    case Loc::Kind::SegVal:
      SegVal[L.Index] = static_cast<uint16_t>(V.bits());
      return;
    case Loc::Kind::SegBase:
      SegBase[L.Index] = static_cast<uint32_t>(V.bits());
      return;
    case Loc::Kind::SegLimit:
      SegLimit[L.Index] = static_cast<uint32_t>(V.bits());
      return;
    case Loc::Kind::Flag:
      Flags[L.Index] = V.bits() & 1;
      return;
    }
  }

  bool running() const { return St == Status::Running; }

  /// True iff the offset is within the segment's limit (inclusive).
  bool inSegment(uint8_t Seg, uint32_t Offset) const {
    return Offset <= SegLimit[Seg];
  }

  /// Physical address of an in-segment offset.
  uint32_t physAddr(uint8_t Seg, uint32_t Offset) const {
    return SegBase[Seg] + Offset; // wraps mod 2^32 by construction
  }
};

} // namespace rtl
} // namespace rocksalt

#endif // ROCKSALT_RTL_MACHINE_H
