//===- rtl/Interp.cpp -----------------------------------------*- C++ -*-===//

#include "rtl/Interp.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::rtl;

Status rtl::execProgram(MachineState &M, const RtlProgram &P,
                        uint32_t NumVars, const AccessHooks &Hooks) {
  std::vector<Bitvec> Vars(NumVars);

  auto Val = [&Vars](Var X) -> const Bitvec & {
    assert(X != NoVar && "use of unset variable slot");
    return Vars[X];
  };

  for (const RtlInstr &I : P) {
    if (I.Guard != NoVar && Val(I.Guard).isZero())
      continue;

    switch (I.K) {
    case RtlInstr::Kind::Arith: {
      const Bitvec &A = Val(I.Src1);
      const Bitvec &B = Val(I.Src2);
      Bitvec R;
      switch (I.AOp) {
      case ArithOp::Add: R = A.add(B); break;
      case ArithOp::Sub: R = A.sub(B); break;
      case ArithOp::Mul: R = A.mul(B); break;
      case ArithOp::Divu: R = A.divu(B); break;
      case ArithOp::Divs: R = A.divs(B); break;
      case ArithOp::Modu: R = A.modu(B); break;
      case ArithOp::Mods: R = A.mods(B); break;
      case ArithOp::And: R = A.logand(B); break;
      case ArithOp::Or: R = A.logor(B); break;
      case ArithOp::Xor: R = A.logxor(B); break;
      case ArithOp::Shl: R = A.shl(B); break;
      case ArithOp::Shru: R = A.shru(B); break;
      case ArithOp::Shrs: R = A.shrs(B); break;
      case ArithOp::Rol: R = A.rol(B); break;
      case ArithOp::Ror: R = A.ror(B); break;
      }
      Vars[I.Dst] = R;
      break;
    }
    case RtlInstr::Kind::Test: {
      const Bitvec &A = Val(I.Src1);
      const Bitvec &B = Val(I.Src2);
      bool R = false;
      switch (I.TOp) {
      case TestOp::Eq: R = A.eq(B); break;
      case TestOp::Ltu: R = A.ltu(B); break;
      case TestOp::Lts: R = A.lts(B); break;
      }
      Vars[I.Dst] = Bitvec(1, R);
      break;
    }
    case RtlInstr::Kind::Imm:
      Vars[I.Dst] = Bitvec(I.Width, I.ImmVal);
      break;
    case RtlInstr::Kind::GetLoc:
      Vars[I.Dst] = M.get(I.Location);
      break;
    case RtlInstr::Kind::SetLoc: {
      const Bitvec &V = Val(I.Src1);
      assert(V.width() == I.Location.width() &&
             "location width mismatch in SetLoc");
      M.set(I.Location, V);
      break;
    }
    case RtlInstr::Kind::GetByte: {
      uint32_t Off = static_cast<uint32_t>(Val(I.Src1).bits());
      if (!M.inSegment(I.Seg, Off)) {
        M.St = Status::Fault;
        return M.St;
      }
      uint32_t Phys = M.physAddr(I.Seg, Off);
      if (Hooks.OnRead)
        Hooks.OnRead(Phys, I.Seg);
      Vars[I.Dst] = Bitvec(8, M.Mem.load8(Phys));
      break;
    }
    case RtlInstr::Kind::SetByte: {
      uint32_t Off = static_cast<uint32_t>(Val(I.Src1).bits());
      if (!M.inSegment(I.Seg, Off)) {
        M.St = Status::Fault;
        return M.St;
      }
      uint32_t Phys = M.physAddr(I.Seg, Off);
      uint8_t V = static_cast<uint8_t>(Val(I.Src2).bits());
      if (Hooks.OnWrite)
        Hooks.OnWrite(Phys, V, I.Seg);
      M.Mem.store8(Phys, V);
      break;
    }
    case RtlInstr::Kind::CastU:
      Vars[I.Dst] = Val(I.Src1).zext(I.Width);
      break;
    case RtlInstr::Kind::CastS:
      Vars[I.Dst] = Val(I.Src1).sext(I.Width);
      break;
    case RtlInstr::Kind::Select: {
      const Bitvec &C = Val(I.Src1);
      assert(C.width() == 1 && "select condition must be 1 bit");
      Vars[I.Dst] = C.isZero() ? Val(I.Src3) : Val(I.Src2);
      break;
    }
    case RtlInstr::Kind::Choose:
      Vars[I.Dst] = M.Orc.choose(I.Width);
      break;
    case RtlInstr::Kind::Error:
      M.St = Status::Error;
      return M.St;
    case RtlInstr::Kind::Fault:
      M.St = Status::Fault;
      return M.St;
    case RtlInstr::Kind::Trap:
      M.St = Status::Halted;
      return M.St;
    }
  }
  return M.St;
}
