//===- rtl/Interp.h - The RTL interpreter ----------------------*- C++ -*-===//
///
/// \file
/// The executable small-step semantics of paper section 2.4: each step is
/// a pure function from machine states to machine states; here the state
/// is mutated in place for efficiency, but instruction execution has no
/// other effects. Non-determinism (`choose`) pulls bits from the state's
/// oracle stream.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_RTL_INTERP_H
#define ROCKSALT_RTL_INTERP_H

#include "rtl/Machine.h"
#include "rtl/Rtl.h"

namespace rocksalt {
namespace rtl {

/// Executes a translated instruction body against \p M. On a fault, trap,
/// or error, sets M.St and stops early. The local-variable file is
/// internal to one execution; \p NumVars is its size (the translator
/// knows how many it allocated).
///
/// \returns the resulting status (also stored in M.St).
Status execProgram(MachineState &M, const RtlProgram &P, uint32_t NumVars,
                   const AccessHooks &Hooks = {});

} // namespace rtl
} // namespace rocksalt

#endif // ROCKSALT_RTL_INTERP_H
