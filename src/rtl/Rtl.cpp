//===- rtl/Rtl.cpp --------------------------------------------*- C++ -*-===//

#include "rtl/Rtl.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::rtl;

namespace {

const char *arithName(ArithOp Op) {
  static const char *Names[] = {"add",  "sub",  "mul",  "divu", "divs",
                                "modu", "mods", "and",  "or",   "xor",
                                "shl",  "shru", "shrs", "rol",  "ror"};
  return Names[static_cast<unsigned>(Op)];
}

const char *testName(TestOp Op) {
  static const char *Names[] = {"eq", "ltu", "lts"};
  return Names[static_cast<unsigned>(Op)];
}

std::string locName(const Loc &L) {
  static const char *Regs[] = {"eax", "ecx", "edx", "ebx",
                               "esp", "ebp", "esi", "edi"};
  static const char *Segs[] = {"es", "cs", "ss", "ds", "fs", "gs"};
  static const char *Flags[] = {"CF", "PF", "AF", "ZF", "SF",
                                "TF", "IF", "DF", "OF"};
  switch (L.K) {
  case Loc::Kind::PC:
    return "pc";
  case Loc::Kind::Reg:
    return Regs[L.Index];
  case Loc::Kind::SegVal:
    return Segs[L.Index];
  case Loc::Kind::SegBase:
    return std::string(Segs[L.Index]) + ".base";
  case Loc::Kind::SegLimit:
    return std::string(Segs[L.Index]) + ".limit";
  case Loc::Kind::Flag:
    return Flags[L.Index];
  }
  return "?";
}

std::string v(Var X) { return "t" + std::to_string(X); }

} // namespace

std::string rtl::printRtl(const RtlInstr &I) {
  std::string S;
  if (I.Guard != NoVar)
    S += "if " + v(I.Guard) + ": ";
  char Buf[64];
  switch (I.K) {
  case RtlInstr::Kind::Arith:
    S += v(I.Dst) + " := " + v(I.Src1) + " " + arithName(I.AOp) + " " +
         v(I.Src2);
    break;
  case RtlInstr::Kind::Test:
    S += v(I.Dst) + " := " + v(I.Src1) + " " + testName(I.TOp) + " " +
         v(I.Src2);
    break;
  case RtlInstr::Kind::Imm:
    std::snprintf(Buf, sizeof(Buf), "%s := 0x%llx:%u", v(I.Dst).c_str(),
                  static_cast<unsigned long long>(I.ImmVal), I.Width);
    S += Buf;
    break;
  case RtlInstr::Kind::GetLoc:
    S += v(I.Dst) + " := load " + locName(I.Location);
    break;
  case RtlInstr::Kind::SetLoc:
    S += "store " + locName(I.Location) + " := " + v(I.Src1);
    break;
  case RtlInstr::Kind::GetByte:
    S += v(I.Dst) + " := Mem[seg" + std::to_string(I.Seg) + ":" + v(I.Src1) +
         "]";
    break;
  case RtlInstr::Kind::SetByte:
    S += "Mem[seg" + std::to_string(I.Seg) + ":" + v(I.Src1) +
         "] := " + v(I.Src2);
    break;
  case RtlInstr::Kind::CastU:
    S += v(I.Dst) + " := zext" + std::to_string(I.Width) + " " + v(I.Src1);
    break;
  case RtlInstr::Kind::CastS:
    S += v(I.Dst) + " := sext" + std::to_string(I.Width) + " " + v(I.Src1);
    break;
  case RtlInstr::Kind::Select:
    S += v(I.Dst) + " := " + v(I.Src1) + " ? " + v(I.Src2) + " : " +
         v(I.Src3);
    break;
  case RtlInstr::Kind::Choose:
    S += v(I.Dst) + " := choose:" + std::to_string(I.Width);
    break;
  case RtlInstr::Kind::Error:
    S += "error";
    break;
  case RtlInstr::Kind::Fault:
    S += "fault";
    break;
  case RtlInstr::Kind::Trap:
    S += "trap";
    break;
  }
  return S;
}

std::string rtl::printRtlProgram(const RtlProgram &P) {
  std::string S;
  for (const RtlInstr &I : P) {
    S += printRtl(I);
    S += "\n";
  }
  return S;
}
