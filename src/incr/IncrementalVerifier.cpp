//===- incr/IncrementalVerifier.cpp - O(patch) re-verification ------------===//
//
// The re-verification loop: dirty cards say which chunk scans a patch
// invalidated, the ChunkCache resolves each dirty chunk by content (a
// reverted patch is a pure hit), and on the accepted steady state the
// re-merged window is spliced into the maintained merge — replay the
// chain from the dirty chunk's recorded entry position until it lands
// back in sync on an untouched chunk base, and only that window's marks
// change. Everything else (first verdict, rejects, finalize violations)
// falls back to the full seam-aware merge of core/Shard, which keeps
// every verdict bit-identical to the sequential checker. Both the scan
// and the merge are then O(patch), which is the bench gate's >= 5x.
//
//===----------------------------------------------------------------------===//

#include "incr/IncrementalVerifier.h"

#include <algorithm>
#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::incr;

IncrementalVerifier::IncrementalVerifier(IncrementalOptions O, svc::Metrics *M)
    : IncrementalVerifier(core::policyTables(), O, M) {}

IncrementalVerifier::IncrementalVerifier(const core::PolicyTables &T,
                                         IncrementalOptions O, svc::Metrics *M)
    : Tables(T), Fused(core::buildFusedPolicy(T)), MaxRead(maxScanReadBytes(T)),
      Opts(O), Met(M), Cache(O.Cache, M) {
  if (Opts.ChunkBytes == 0 || Opts.ChunkBytes % core::BundleSize != 0)
    throw std::invalid_argument(
        "incremental chunk granularity must be a nonzero multiple of the "
        "bundle size");
}

ImageEntry &IncrementalVerifier::entry(ImageId Id) {
  if (ImageEntry *E = Store.get(Id))
    return *E;
  throw std::invalid_argument("unknown image handle");
}

ImageId IncrementalVerifier::open(std::vector<uint8_t> Bytes, IncrResult *Out) {
  ImageId Id = Store.open(std::move(Bytes), Opts.ChunkBytes);
  IncrResult R = reverify(Id);
  if (Out)
    *Out = std::move(R);
  return Id;
}

void IncrementalVerifier::patchBytes(ImageId Id, uint32_t Offset,
                                     const uint8_t *Bytes, uint32_t Len) {
  ImageEntry &E = entry(Id);
  if (Len == 0)
    throw std::invalid_argument("zero-length patch");
  if (Offset > E.size() || Len > E.size() - Offset)
    throw std::invalid_argument("patch range leaves the image");

  for (uint32_t I = 0; I < Len; ++I)
    E.Bytes[Offset + I] = Bytes[I];

  // Chunk c's scan read the window [c*CB, (c+1)*CB - 1 + MaxRead)
  // (clamped to the image), so the patch invalidates every chunk whose
  // window intersects [Offset, Offset+Len): the chunks containing the
  // patched bytes plus predecessors whose window overhangs into them.
  const uint32_t CB = E.ChunkBytes;
  uint32_t LastC = (Offset + Len - 1) / CB;
  if (LastC >= E.numChunks())
    LastC = E.numChunks() - 1;
  // Smallest c with (c+1)*CB - 1 + MaxRead >= Offset + 1, i.e. whose
  // unclamped window end exceeds Offset. (Clamping the window end to the
  // image size never excludes Offset, since Offset < size.)
  uint32_t FirstC = 0;
  int64_t Need = int64_t(Offset) + 2 - int64_t(MaxRead); // (c+1)*CB >= Need
  if (Need > 0) {
    int64_t CPlus1 = (Need + CB - 1) / CB;
    if (CPlus1 > 1)
      FirstC = uint32_t(CPlus1 - 1);
  }
  for (uint32_t C = FirstC; C <= LastC; ++C)
    E.DirtyCards[C] = 1;
}

IncrResult IncrementalVerifier::reverify(ImageId Id) {
  ImageEntry &E = entry(Id);
  IncrResult Res;

  const uint8_t *Code = E.Bytes.data();
  const uint32_t Size = E.size();
  const uint32_t CB = E.ChunkBytes;
  DirtyIdx.clear();
  for (uint32_t C = 0; C < E.numChunks(); ++C) {
    if (!E.DirtyCards[C])
      continue;
    uint32_t Begin = C * CB;
    uint32_t End = Begin + CB < Size ? Begin + CB : Size;
    ChunkKey K = chunkKey(Code, Size, Begin, End, MaxRead);
    std::shared_ptr<const core::ShardScan> Scan = Cache.lookup(K);
    if (Scan) {
      ++Res.ChunkCacheHits;
    } else {
      auto Fresh = std::make_shared<core::ShardScan>();
      Fresh->reset(Begin, End);
      scanShard(Fused, Code, Size, *Fresh);
      Scan = Cache.insert(K, std::move(Fresh));
      ++Res.ChunksRescanned;
    }
    E.Chunks[C] = std::move(Scan);
    DirtyIdx.push_back(C); // cards cleared below; the splice reads them
  }

  if (!E.Merge.Ok || !spliceReverify(E, Res)) {
    // Full path: first verdict, rejects, and fast-path bailouts. The
    // seam-aware join is the certified-bit-identical reference.
    Res.SeamRescans = 0; // drop any partial splice's count
    Res.Spliced = false;
    Res.Windows.clear(); // and any windows a bailed-out splice appended
    MergeScratch.clear();
    MergeScratch.reserve(E.numChunks());
    for (const auto &S : E.Chunks)
      MergeScratch.push_back(S.get());
    core::CheckResult Full = core::mergeShardScans(
        Fused, Code, Size, MergeScratch.data(), MergeScratch.size(),
        &Res.SeamRescans);
    Res.Ok = Full.Ok;
    Res.Reason = Full.Reason;
    if (Full.Ok) {
      rebuildMergeState(E, std::move(Full));
    } else {
      E.Merge.Ok = false;
      E.Merge.R = std::move(Full); // lastCheck still serves rejects
    }
  }
  for (uint32_t C : DirtyIdx)
    E.DirtyCards[C] = 0;

  if (Met) {
    Met->ShardsScanned.add(Res.ChunksRescanned);
    Met->SeamRescans.add(Res.SeamRescans);
  }
  return Res;
}

bool IncrementalVerifier::spliceReverify(ImageEntry &E, IncrResult &Res) {
  MergeState &M = E.Merge;
  const uint8_t *Code = E.Bytes.data();
  const uint32_t Size = E.size();
  const uint32_t CB = E.ChunkBytes;
  const uint32_t N = E.numChunks();

  // A patch never reaches back before its dirty range: chunk c's scan —
  // and every chain step starting inside c — reads only c's window, and
  // the dirty marking already includes every chunk whose window touches
  // the patch. So the chain up to the first dirty chunk's recorded entry
  // position is unchanged, and the replay below starts there.
  uint32_t NextUncovered = 0;
  for (uint32_t D : DirtyIdx) {
    if (D < NextUncovered)
      continue; // consumed by the previous segment's replay

    const uint32_t Pos0 = M.EntryPos[D];
    uint32_t Pos = Pos0;
    uint32_t I = D;
    SegValid.clear();
    SegPair.clear();
    SegTgt.clear();
    uint32_t CEnd = N, WEnd = Size;

    while (Pos < Size) {
      // Bases the chain overran mid-instruction: their fresh scans are
      // desynchronized and discarded, exactly as in the full merge.
      while (I < N && uint64_t(I) * CB < Pos)
        M.EntryPos[I++] = Pos;
      if (I < N && uint64_t(I) * CB == Pos) {
        // Back on a chunk base. If the previous chain also entered this
        // chunk in sync and its scan is untouched, everything downstream
        // is byte-for-byte the previous merge: the window ends here.
        if (M.EntryPos[I] == Pos && !E.DirtyCards[I]) {
          CEnd = I;
          WEnd = Pos;
          break;
        }
        M.EntryPos[I] = Pos;
        const core::ShardScan &S = *E.Chunks[I];
        if (S.Failed)
          return false; // parse reject: full merge owns truncation
        for (uint32_t P : S.ValidPos)
          SegValid.push_back(P);
        for (uint32_t P : S.PairJmpPos)
          SegPair.push_back(P);
        for (uint32_t T : S.TargetPos)
          SegTgt.emplace_back(I, T);
        Pos = S.StopPos;
        ++I;
      } else {
        // Seam re-check, attributed to the chunk the step starts in.
        uint32_t StepChunk = Pos / CB;
        ++Res.SeamRescans;
        SegValid.push_back(Pos);
        uint32_t Dest = 0;
        switch (core::verifyStep(Fused, Code, &Pos, Size, &Dest)) {
        case core::StepKind::MaskedJump:
          SegPair.push_back(Pos - core::MaskedJumpHalfLen);
          break;
        case core::StepKind::NoControlFlow:
          break;
        case core::StepKind::DirectJump:
          SegTgt.emplace_back(StepChunk, Dest);
          break;
        case core::StepKind::Fail:
          return false;
        }
      }
    }

    // Window descriptor for downstream incremental consumers (the
    // linter): does any direct branch currently land strictly inside
    // the window? TargetCnt still reflects the pre-splice chain here.
    bool InteriorBefore = false;
    for (uint32_t P = Pos0 + 1; P < WEnd; ++P)
      if (M.TargetCnt[P]) {
        InteriorBefore = true;
        break;
      }

    // Splice [Pos0, WEnd): retire the covered chunks' old target
    // contributions, clear the window's positional marks, apply the new.
    for (uint32_t C = D; C < CEnd; ++C) {
      for (uint32_t T : M.SegTargets[C])
        if (--M.TargetCnt[T] == 0)
          M.R.Target[T] = 0;
      M.SegTargets[C].clear();
    }
    if (Pos0 < WEnd) {
      std::fill(M.R.Valid.begin() + Pos0, M.R.Valid.begin() + WEnd, 0);
      std::fill(M.R.PairJmp.begin() + Pos0, M.R.PairJmp.begin() + WEnd, 0);
    }
    for (uint32_t P : SegValid)
      M.R.Valid[P] = 1;
    for (uint32_t P : SegPair)
      M.R.PairJmp[P] = 1;
    for (const auto &CT : SegTgt) {
      M.SegTargets[CT.first].push_back(CT.second);
      if (M.TargetCnt[CT.second]++ == 0)
        M.R.Target[CT.second] = 1;
    }

    // Incremental finalize: only the window's Valid bits and the new
    // targets can introduce a Figure-5 final-pass violation. Precedence
    // and truncation on a reject belong to the full pass — bail out.
    for (uint32_t P = Pos0; P < WEnd; ++P)
      if ((M.R.Target[P] || !(P & (core::BundleSize - 1))) && !M.R.Valid[P])
        return false;
    for (const auto &CT : SegTgt)
      if (!M.R.Valid[CT.second])
        return false;

    // The post-splice interior-target scan sees the applied chain.
    bool InteriorAfter = false;
    for (uint32_t P = Pos0 + 1; P < WEnd; ++P)
      if (M.TargetCnt[P]) {
        InteriorAfter = true;
        break;
      }
    if (Pos0 < WEnd)
      Res.Windows.push_back({Pos0, WEnd, InteriorBefore, InteriorAfter});

    NextUncovered = CEnd;
  }

  Res.Ok = true;
  Res.Reason = core::RejectReason::None;
  Res.Spliced = true;
  return true;
}

void IncrementalVerifier::rebuildMergeState(ImageEntry &E,
                                            core::CheckResult &&R) {
  MergeState &M = E.Merge;
  const uint8_t *Code = E.Bytes.data();
  const uint32_t Size = E.size();
  const uint32_t CB = E.ChunkBytes;
  const uint32_t N = E.numChunks();

  M.Ok = false;
  M.R = std::move(R);
  M.EntryPos.assign(N, 0);
  M.SegTargets.assign(N, {});
  M.TargetCnt.assign(Size, 0);

  // Replay the accepted merge once to record where the chain entered
  // each chunk and which chunk each direct jump belongs to. An accepted
  // image has no failing step, so this walk always reaches the end.
  uint32_t Pos = 0;
  uint32_t I = 0;
  while (Pos < Size) {
    while (I < N && uint64_t(I) * CB < Pos)
      M.EntryPos[I++] = Pos;
    if (I < N && uint64_t(I) * CB == Pos) {
      M.EntryPos[I] = Pos;
      const core::ShardScan &S = *E.Chunks[I];
      for (uint32_t T : S.TargetPos) {
        M.SegTargets[I].push_back(T);
        ++M.TargetCnt[T];
      }
      Pos = S.StopPos;
      ++I;
    } else {
      uint32_t StepChunk = Pos / CB;
      uint32_t Dest = 0;
      switch (core::verifyStep(Fused, Code, &Pos, Size, &Dest)) {
      case core::StepKind::DirectJump:
        M.SegTargets[StepChunk].push_back(Dest);
        ++M.TargetCnt[Dest];
        break;
      case core::StepKind::Fail:
        return; // unreachable on an accepted image; stay invalid
      default:
        break;
      }
    }
  }
  while (I < N)
    M.EntryPos[I++] = Pos;
  M.Ok = true;
}

IncrResult IncrementalVerifier::patch(ImageId Id, uint32_t Offset,
                                      const uint8_t *Bytes, uint32_t Len) {
  patchBytes(Id, Offset, Bytes, Len);
  return reverify(Id);
}

const core::CheckResult &IncrementalVerifier::lastCheck(ImageId Id) {
  return entry(Id).Merge.R;
}

void IncrementalVerifier::close(ImageId Id) {
  if (!Store.close(Id))
    throw std::invalid_argument("unknown image handle");
}
