//===- incr/ImageStore.h - Registered mutating images ----------*- C++ -*-===//
///
/// \file
/// The registry of long-lived images the incremental verifier tracks:
/// id → current bytes + chunk geometry + the per-chunk scan results that
/// certify the last verdict + a dirty-card bitmap of chunks whose scan
/// window a patch has touched since the last re-verification (the same
/// shape as a GC card table: writes mark cards, the collector — here the
/// re-verifier — scans and clears them).
///
/// The store is pure bookkeeping; `incr::IncrementalVerifier` owns the
/// scanning and merging policy on top of it.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_INCR_IMAGESTORE_H
#define ROCKSALT_INCR_IMAGESTORE_H

#include "core/Shard.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rocksalt {
namespace incr {

/// Opaque image handle. Never reused within one store's lifetime, so a
/// stale handle fails loudly instead of aliasing a newer image.
using ImageId = uint32_t;

/// The maintained merge of the last *accepted* verdict, kept so a patch
/// can splice its re-merged window into the previous result instead of
/// re-merging O(image) every time. `EntryPos[c]` is the first chain
/// position >= c*ChunkBytes (the chain was in sync at c iff it equals
/// the chunk base); `SegTargets[c]` lists the direct-jump targets
/// contributed by chain steps starting inside chunk c, and `TargetCnt`
/// refcounts contributors per target position so removing one segment's
/// jumps clears exactly the bits no other jump still justifies. Only
/// valid while `Ok` — any reject drops back to the full merge until the
/// image is accepted again.
struct MergeState {
  bool Ok = false;
  core::CheckResult R;
  std::vector<uint32_t> EntryPos;
  std::vector<std::vector<uint32_t>> SegTargets;
  std::vector<uint32_t> TargetCnt;
};

/// One registered image and its incremental verification state.
struct ImageEntry {
  std::vector<uint8_t> Bytes; ///< current contents (patches mutate in place)
  uint32_t ChunkBytes = 0;    ///< chunk granularity (multiple of BundleSize)
  /// Per-chunk scans backing the last verdict; Chunks[i] covers
  /// [i*ChunkBytes, min((i+1)*ChunkBytes, size)). Null until first scan.
  std::vector<std::shared_ptr<const core::ShardScan>> Chunks;
  /// Dirty cards: chunk i's scan window was touched by a patch since its
  /// scan in Chunks[i] was (re)computed.
  std::vector<uint8_t> DirtyCards;
  /// Spliceable merge of the last accepted verdict (see MergeState).
  MergeState Merge;

  uint32_t size() const { return uint32_t(Bytes.size()); }
  uint32_t numChunks() const { return uint32_t(Chunks.size()); }
};

class ImageStore {
public:
  /// Registers an image, choosing \p ChunkBytes granularity (must be a
  /// nonzero multiple of core::BundleSize; throws std::invalid_argument
  /// otherwise). All chunks start dirty.
  ImageId open(std::vector<uint8_t> Bytes, uint32_t ChunkBytes);

  /// Null when the handle is unknown (or already closed).
  ImageEntry *get(ImageId Id);
  const ImageEntry *get(ImageId Id) const;

  /// Unregisters; false when the handle is unknown.
  bool close(ImageId Id);

  size_t count() const { return Images.size(); }

private:
  std::unordered_map<ImageId, ImageEntry> Images;
  ImageId NextId = 1; ///< 0 stays invalid
};

} // namespace incr
} // namespace rocksalt

#endif // ROCKSALT_INCR_IMAGESTORE_H
