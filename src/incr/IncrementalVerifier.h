//===- incr/IncrementalVerifier.h - O(patch) re-verification ---*- C++ -*-===//
///
/// \file
/// Turns verification of a mutating image from O(image) into O(patch):
/// the JIT / hot-reload workload where a long-lived sandboxed process
/// changes a few dozen bytes at a time and needs a fresh verdict per
/// update.
///
/// Protocol per image:
///
///   open(bytes)              — register, scan every chunk (cold chunks
///                              may still hit the cache from identical
///                              chunks of other images), merge, verdict;
///   patchBytes(id, off, b[]) — overwrite bytes in place and mark the
///                              dirty cards of every chunk whose *scan
///                              window* intersects the patched range
///                              (windows overhang chunk ends by the DFA
///                              read bound, so a patch near a chunk
///                              start also dirties its predecessor);
///   reverify(id)             — re-scan dirty chunks only (through the
///                              ChunkCache, so reverting a patch is a
///                              pure cache hit), then *splice* the
///                              re-merged window into the maintained
///                              merge of the last accepted verdict: the
///                              chain is replayed from the dirty chunk's
///                              recorded entry position until it lands
///                              back in sync on an untouched chunk base,
///                              and only that window's marks change.
///                              Any reject (and the first verdict) goes
///                              through the full seam-aware join of
///                              core/Shard instead, so the verdict stays
///                              certified bit-identical to
///                              `RockSalt::check` on the current bytes;
///   patch(id, off, b[])      — patchBytes + reverify, the service's
///                              per-request shape;
///   close(id)                — unregister (cached scans stay shared).
///
/// Patches never change an image's size: the sandbox loader maps code
/// regions once; tier-ups overwrite in place (pad with nops to grow).
///
/// Not thread-safe: one instance per session/thread, like
/// svc::ParallelVerifier.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_INCR_INCREMENTALVERIFIER_H
#define ROCKSALT_INCR_INCREMENTALVERIFIER_H

#include "incr/ChunkCache.h"
#include "incr/ImageStore.h"

namespace rocksalt {
namespace incr {

struct IncrementalOptions {
  /// Chunk granularity (cache line of the incremental scheme): smaller
  /// chunks re-scan less per patch but merge more entries; must be a
  /// nonzero multiple of core::BundleSize.
  uint32_t ChunkBytes = 512;
  ChunkCacheOptions Cache;
};

/// One spliced re-verification window: the chain was replayed over
/// [Begin, End) and only that range's marks changed. Begin and End are
/// chain positions in both the old and the new match chain, so a
/// consumer maintaining per-node state (the incremental linter) can
/// splice its own window in. The InteriorTargets* flags report whether
/// any direct branch landed strictly inside (Begin, End) before /
/// after the splice — when both are false and the window is pure
/// straight-line code, nothing outside the window can observe it.
struct SpliceWindow {
  uint32_t Begin = 0;
  uint32_t End = 0;
  bool InteriorTargetsBefore = false;
  bool InteriorTargetsAfter = false;
};

/// The verdict plus what the incremental pass actually did — the
/// observability the service's incr_*/svc_patch_* metrics export.
/// O(#dirty ranges): the full bitmaps of the current verdict stay
/// inside the verifier (they are the maintained merge) and are read by
/// reference through `lastCheck`, so a patch verdict never pays an
/// O(image) copy; only the splice-window descriptors travel out.
struct IncrResult {
  bool Ok = false;
  core::RejectReason Reason = core::RejectReason::None;
  uint32_t ChunksRescanned = 0; ///< dirty chunks whose scan was recomputed
  uint32_t ChunkCacheHits = 0;  ///< dirty chunks satisfied by the cache
  uint64_t SeamRescans = 0;     ///< verifySteps replayed at chunk seams
  /// True when the verdict came from the O(patch) splice path; Windows
  /// then lists every replayed window. False means a full merge ran
  /// (first verdict, any reject, or a splice bail-out) and Windows is
  /// empty.
  bool Spliced = false;
  std::vector<SpliceWindow> Windows;
};

class IncrementalVerifier {
public:
  explicit IncrementalVerifier(IncrementalOptions O = {},
                               svc::Metrics *M = nullptr);
  IncrementalVerifier(const core::PolicyTables &T, IncrementalOptions O = {},
                      svc::Metrics *M = nullptr);

  IncrementalVerifier(const IncrementalVerifier &) = delete;
  IncrementalVerifier &operator=(const IncrementalVerifier &) = delete;

  /// Registers \p Bytes and produces its initial verdict.
  ImageId open(std::vector<uint8_t> Bytes, IncrResult *Out = nullptr);

  /// Overwrites [Offset, Offset+Len) with \p Bytes and marks dirty
  /// cards; no re-verification. Throws std::invalid_argument on an
  /// unknown handle, a zero-length patch, or a range that leaves
  /// [0, size).
  void patchBytes(ImageId Id, uint32_t Offset, const uint8_t *Bytes,
                  uint32_t Len);

  /// Re-verifies from the dirty cards; clears them. Throws
  /// std::invalid_argument on an unknown handle.
  IncrResult reverify(ImageId Id);

  /// patchBytes + reverify.
  IncrResult patch(ImageId Id, uint32_t Offset, const uint8_t *Bytes,
                   uint32_t Len);
  IncrResult patch(ImageId Id, uint32_t Offset,
                   const std::vector<uint8_t> &Bytes) {
    return patch(Id, Offset, Bytes.data(), uint32_t(Bytes.size()));
  }

  /// The full instrumented result of the image's last re-verification,
  /// bit-identical to `RockSalt::check` on its current bytes. Valid
  /// until the image's next reverify/patch/close. Throws
  /// std::invalid_argument on an unknown handle.
  const core::CheckResult &lastCheck(ImageId Id);

  /// Unregisters. Throws std::invalid_argument on an unknown handle.
  void close(ImageId Id);

  ImageStore &store() { return Store; }
  ChunkCache &cache() { return Cache; }
  /// The DFA-derived per-step read bound the chunk windows use.
  uint32_t maxReadBytes() const { return MaxRead; }

private:
  ImageEntry &entry(ImageId Id);
  /// O(patch) path: replays the chain across each dirty range and
  /// splices the window into E.Merge. False when the result is not a
  /// clean accept (parse failure, finalize violation, no prior accepted
  /// merge) — the caller then runs the full merge.
  bool spliceReverify(ImageEntry &E, IncrResult &Res);
  /// Rebuilds E.Merge's attribution state from an accepted full merge,
  /// taking ownership of its result.
  void rebuildMergeState(ImageEntry &E, core::CheckResult &&R);

  const core::PolicyTables &Tables;
  /// The fused form of Tables, built once per verifier: chunk scans,
  /// splice replays, and full merges all drive it (the legacy Tables
  /// stay for the read-bound derivation and for identity/debugging).
  core::FusedPolicy Fused;
  uint32_t MaxRead;
  IncrementalOptions Opts;
  svc::Metrics *Met; ///< may be null
  ChunkCache Cache;
  ImageStore Store;
  std::vector<const core::ShardScan *> MergeScratch; ///< reused per merge
  std::vector<uint32_t> DirtyIdx;                    ///< reused per reverify
  std::vector<uint32_t> SegValid, SegPair;           ///< splice scratch
  std::vector<std::pair<uint32_t, uint32_t>> SegTgt; ///< (chunk, target)
};

} // namespace incr
} // namespace rocksalt

#endif // ROCKSALT_INCR_INCREMENTALVERIFIER_H
