//===- incr/ChunkCache.h - LRU cache of per-chunk scan results -*- C++ -*-===//
///
/// \file
/// The memo table of the incremental verifier: per-chunk `ShardScan`
/// results keyed by the content of the bytes the scan actually read.
///
/// Why the key is sound: `core/Shard.h` proves that a Figure-5 scan
/// started fresh at a bundle-aligned chunk base follows the chain the
/// sequential verifier would on an accepted image, and that the
/// seam-aware merge repairs every desynchronized case — so the "entry
/// boundary state" of a chunk scan is a constant ("fresh DFA start at a
/// bundle-aligned base") and needs no representation in the key. What
/// remains is exactly the scan's input: `scanShard` on [Begin, End) is a
/// pure function of
///
///   * the bytes in the scan window [Begin, min(End - 1 + MaxRead, Size))
///     where MaxRead bounds how many bytes one `verifyStep` can consume
///     (maxScanReadBytes, derived from the live-acyclic policy DFAs);
///   * the absolute geometry (Begin, End) — positions and pc-relative
///     jump targets are absolute;
///   * the image size — `dfaMatch` exhaustion and the `extract` range
///     check [0, Size) both read it.
///
/// The key is therefore SHA-256 over (Begin, End, Size, window bytes).
/// Entries are shared `ShardScan`s behind shared_ptr: an image holds its
/// current chunk scans alive even after LRU eviction, and identical
/// chunks (nop sleds, common prologues) are shared across images.
///
/// Bounded by entry count and by approximate resident bytes, evicting
/// least-recently-used entries; hit/miss/eviction totals are kept
/// locally and mirrored into `svc::Metrics` (incr_chunk_* counters).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_INCR_CHUNKCACHE_H
#define ROCKSALT_INCR_CHUNKCACHE_H

#include "core/Shard.h"
#include "svc/Metrics.h"

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

namespace rocksalt {
namespace incr {

/// The largest number of bytes one `verifyStep` can read starting at its
/// chain position, derived from the tables: the longest run of
/// transitions any of the three policy DFAs can make before reaching an
/// accepting or rejecting state. Finite because the live, non-accepting
/// part of each (minimized) instruction DFA is acyclic — a cycle there
/// would mean unboundedly long instructions. Throws std::logic_error if
/// a table ever acquires such a cycle (no safe chunk window exists then).
uint32_t maxScanReadBytes(const core::PolicyTables &T);

/// Cache key: SHA-256 over (Begin, End, Size, scan-window bytes).
using ChunkKey = std::array<uint8_t, 32>;

/// Computes the key for chunk [Begin, End) of the image [Code, Code+Size)
/// under scan-read bound \p MaxRead.
ChunkKey chunkKey(const uint8_t *Code, uint32_t Size, uint32_t Begin,
                  uint32_t End, uint32_t MaxRead);

struct ChunkCacheOptions {
  size_t MaxEntries = 1 << 16;          ///< LRU bound on entry count
  size_t MaxBytes = 64u << 20;          ///< LRU bound on resident bytes
};

class ChunkCache {
public:
  explicit ChunkCache(ChunkCacheOptions O = {}, svc::Metrics *M = nullptr);

  ChunkCache(const ChunkCache &) = delete;
  ChunkCache &operator=(const ChunkCache &) = delete;

  /// Looks the key up, refreshing its LRU position. Null on a miss.
  /// Counts a hit or a miss.
  std::shared_ptr<const core::ShardScan> lookup(const ChunkKey &K);

  /// Inserts (or replaces) the entry for \p K and evicts LRU entries
  /// until both bounds hold again. The returned pointer stays valid for
  /// callers regardless of eviction (shared ownership).
  std::shared_ptr<const core::ShardScan>
  insert(const ChunkKey &K, std::shared_ptr<const core::ShardScan> Scan);

  size_t size() const { return Map.size(); }
  size_t residentBytes() const { return Bytes; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }

  /// Drops every entry (counters keep their totals).
  void clear();

private:
  struct Entry {
    ChunkKey Key;
    std::shared_ptr<const core::ShardScan> Scan;
    size_t Cost = 0;
  };
  struct KeyHash {
    size_t operator()(const ChunkKey &K) const {
      size_t H = 0;
      for (size_t I = 0; I < sizeof(size_t); ++I)
        H = (H << 8) | K[I];
      return H;
    }
  };

  void evictToFit();
  static size_t entryCost(const core::ShardScan &S);

  ChunkCacheOptions Opts;
  svc::Metrics *Met; ///< may be null
  std::list<Entry> Lru; ///< front = most recent
  std::unordered_map<ChunkKey, std::list<Entry>::iterator, KeyHash> Map;
  size_t Bytes = 0;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

} // namespace incr
} // namespace rocksalt

#endif // ROCKSALT_INCR_CHUNKCACHE_H
