//===- incr/ImageStore.cpp - Registered mutating images -------------------===//

#include "incr/ImageStore.h"

#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::incr;

ImageId ImageStore::open(std::vector<uint8_t> Bytes, uint32_t ChunkBytes) {
  if (ChunkBytes == 0 || ChunkBytes % core::BundleSize != 0)
    throw std::invalid_argument(
        "image chunk granularity must be a nonzero multiple of the bundle "
        "size");
  ImageEntry E;
  E.Bytes = std::move(Bytes);
  E.ChunkBytes = ChunkBytes;
  uint32_t NumChunks = (E.size() + ChunkBytes - 1) / ChunkBytes;
  E.Chunks.assign(NumChunks, nullptr);
  E.DirtyCards.assign(NumChunks, 1);
  ImageId Id = NextId++;
  Images.emplace(Id, std::move(E));
  return Id;
}

ImageEntry *ImageStore::get(ImageId Id) {
  auto It = Images.find(Id);
  return It == Images.end() ? nullptr : &It->second;
}

const ImageEntry *ImageStore::get(ImageId Id) const {
  auto It = Images.find(Id);
  return It == Images.end() ? nullptr : &It->second;
}

bool ImageStore::close(ImageId Id) { return Images.erase(Id) != 0; }
