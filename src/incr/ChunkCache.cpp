//===- incr/ChunkCache.cpp - LRU cache of per-chunk scan results ----------===//

#include "incr/ChunkCache.h"

#include "support/Sha256.h"

#include <stdexcept>

using namespace rocksalt;
using namespace rocksalt::incr;

namespace {

/// Longest run of transitions from Start before the first accepting or
/// rejecting state, by DFS with on-stack cycle detection. `dfaMatch`
/// stops reading the moment it enters an accepting state (shortest
/// match) or a rejecting one, so this is exactly its read bound.
uint32_t maxReadOf(const re::Dfa &A) {
  enum : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Color(A.numStates(), White);
  std::vector<uint32_t> Depth(A.numStates(), 0); // longest read from state

  struct StackFrame {
    uint32_t State;
    unsigned NextByte;
  };
  std::vector<StackFrame> Stack;

  auto terminal = [&](uint32_t S) { return A.Accepts[S] || A.Rejects[S]; };

  // The start state itself may be accepting (nullable regex) — dfaMatch
  // still reads at least one byte before testing, so depth counts edges
  // taken, and the read bound is depth-from-start.
  Color[A.Start] = Grey;
  Stack.push_back({A.Start, 0});
  while (!Stack.empty()) {
    StackFrame &F = Stack.back();
    if (F.NextByte == 256) {
      Color[F.State] = Black;
      Stack.pop_back();
      continue;
    }
    uint32_t Next = A.Table[F.State][F.NextByte++];
    uint32_t NextDepth = terminal(Next) ? 1 : 0;
    if (!terminal(Next)) {
      if (Color[Next] == Grey)
        throw std::logic_error(
            "policy DFA has a live non-accepting cycle: no finite scan "
            "window exists for chunk caching");
      if (Color[Next] == White) {
        Color[Next] = Grey;
        Stack.push_back({Next, 0});
        continue; // resolve Next's depth first; revisit this edge below
      }
      NextDepth = 1 + Depth[Next];
    }
    if (NextDepth > Depth[F.State])
      Depth[F.State] = NextDepth;
  }

  // The DFS above pops a child before folding its depth into the parent
  // on the `continue` path; run a second pass that re-folds every edge
  // now that all depths are final (the graph is acyclic, so one extra
  // relaxation sweep per topological depth converges; iterate to fixed
  // point for simplicity — the tables have < 50 states).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t S = 0; S < A.numStates(); ++S) {
      if (terminal(S) || Color[S] == White)
        continue;
      for (unsigned B = 0; B < 256; ++B) {
        uint32_t Next = A.Table[S][B];
        uint32_t Cand = terminal(Next) ? 1 : 1 + Depth[Next];
        if (Cand > Depth[S]) {
          Depth[S] = Cand;
          Changed = true;
        }
      }
    }
  }
  return Depth[A.Start];
}

} // namespace

uint32_t incr::maxScanReadBytes(const core::PolicyTables &T) {
  uint32_t R = maxReadOf(T.MaskedJump);
  uint32_t N = maxReadOf(T.NoControlFlow);
  uint32_t D = maxReadOf(T.DirectJump);
  if (N > R)
    R = N;
  if (D > R)
    R = D;
  return R;
}

ChunkKey incr::chunkKey(const uint8_t *Code, uint32_t Size, uint32_t Begin,
                        uint32_t End, uint32_t MaxRead) {
  uint32_t WindowEnd = End - 1 + MaxRead;
  if (WindowEnd > Size || WindowEnd < End) // clamp (and guard overflow)
    WindowEnd = Size;
  support::Sha256 H;
  uint8_t Hdr[12];
  for (unsigned I = 0; I < 4; ++I) {
    Hdr[I] = uint8_t(Begin >> (8 * I));
    Hdr[4 + I] = uint8_t(End >> (8 * I));
    Hdr[8 + I] = uint8_t(Size >> (8 * I));
  }
  H.update(Hdr, sizeof(Hdr));
  H.update(Code + Begin, WindowEnd - Begin);
  return H.digest();
}

ChunkCache::ChunkCache(ChunkCacheOptions O, svc::Metrics *M)
    : Opts(O), Met(M) {}

size_t ChunkCache::entryCost(const core::ShardScan &S) {
  return sizeof(Entry) + sizeof(core::ShardScan) +
         sizeof(uint32_t) * (S.ValidPos.capacity() + S.TargetPos.capacity() +
                             S.PairJmpPos.capacity());
}

std::shared_ptr<const core::ShardScan> ChunkCache::lookup(const ChunkKey &K) {
  auto It = Map.find(K);
  if (It == Map.end()) {
    ++Misses;
    if (Met)
      Met->IncrChunkMisses.add();
    return nullptr;
  }
  ++Hits;
  if (Met)
    Met->IncrChunkHits.add();
  Lru.splice(Lru.begin(), Lru, It->second); // refresh
  return It->second->Scan;
}

std::shared_ptr<const core::ShardScan>
ChunkCache::insert(const ChunkKey &K,
                   std::shared_ptr<const core::ShardScan> Scan) {
  auto It = Map.find(K);
  if (It != Map.end()) {
    Bytes -= It->second->Cost;
    It->second->Scan = Scan;
    It->second->Cost = entryCost(*Scan);
    Bytes += It->second->Cost;
    Lru.splice(Lru.begin(), Lru, It->second);
  } else {
    Lru.push_front(Entry{K, Scan, entryCost(*Scan)});
    Bytes += Lru.front().Cost;
    Map.emplace(K, Lru.begin());
  }
  evictToFit();
  return Scan;
}

void ChunkCache::evictToFit() {
  while (Map.size() > Opts.MaxEntries ||
         (Bytes > Opts.MaxBytes && Map.size() > 1)) {
    Entry &Victim = Lru.back();
    Bytes -= Victim.Cost;
    Map.erase(Victim.Key);
    Lru.pop_back();
    ++Evictions;
    if (Met)
      Met->IncrChunkEvictions.add();
  }
}

void ChunkCache::clear() {
  Map.clear();
  Lru.clear();
  Bytes = 0;
}
