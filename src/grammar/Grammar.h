//===- grammar/Grammar.h - Typed parsing combinators -----------*- C++ -*-===//
///
/// \file
/// The Decoder DSL of paper section 2.1: typed grammars over the binary
/// alphabet with semantic actions. A value of type Grammar<T> denotes a
/// relation between bit strings and semantic values of type T, built from
/// the constructors
///
///   Void  Eps  Bit  Any  Cat  Alt  Star  Map
///
/// Parsing is executable through Brzozowski derivatives exactly as in
/// section 2.2: `derivBit` strips a leading bit and adjusts the semantic
/// actions with Maps so the residual grammar computes the same values;
/// `extract` reads off the values associated with the empty string. The
/// smart constructors perform the Void-propagation reductions, which keep
/// iterated derivatives from blowing up.
///
/// `strip` erases the semantic actions, producing the untyped regex the
/// DFA generator (regex/Dfa.h) and the ambiguity analysis (section 4.1)
/// consume.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_GRAMMAR_GRAMMAR_H
#define ROCKSALT_GRAMMAR_GRAMMAR_H

#include "regex/Regex.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace rocksalt {
namespace gram {

/// The unit semantic value (Coq's tt).
struct Unit {
  bool operator==(const Unit &) const { return true; }
};

template <typename T> class Grammar;

namespace detail {

/// Base node. Each node knows how to differentiate itself, how to
/// "nullify" itself (the paper's `null g`: a grammar matching only the
/// empty string but computing the same values), how to extract the values
/// it associates with the empty string, and how to strip to a regex.
template <typename T> class Node {
public:
  virtual ~Node() = default;
  virtual Grammar<T> derivBit(bool Bit) const = 0;
  virtual Grammar<T> nullify() const = 0;
  virtual void extract(std::vector<T> &Out) const = 0;
  virtual re::Regex strip(re::Factory &F) const = 0;
  virtual bool isVoid() const { return false; }
};

} // namespace detail

/// A value-semantic handle on an immutable grammar node.
template <typename T> class Grammar {
  std::shared_ptr<const detail::Node<T>> Impl;

public:
  Grammar() = default;
  explicit Grammar(std::shared_ptr<const detail::Node<T>> N)
      : Impl(std::move(N)) {}

  bool valid() const { return Impl != nullptr; }
  bool isVoid() const { return Impl->isVoid(); }

  /// The Brzozowski derivative with respect to one bit.
  Grammar<T> derivBit(bool Bit) const { return Impl->derivBit(Bit); }

  /// Derivative with respect to the 8 bits of \p Byte, MSB first (the
  /// order in which the Intel manual writes opcode patterns).
  Grammar<T> derivByte(uint8_t Byte) const {
    Grammar<T> G = *this;
    for (int I = 7; I >= 0; --I)
      G = G.derivBit((Byte >> I) & 1);
    return G;
  }

  /// The paper's `null g`: equivalent to Eps when this grammar accepts
  /// the empty string (retaining the associated values), Void otherwise.
  Grammar<T> nullify() const { return Impl->nullify(); }

  /// Values associated with the empty string; nonempty iff the grammar
  /// accepts the empty string.
  std::vector<T> extract() const {
    std::vector<T> Out;
    Impl->extract(Out);
    return Out;
  }

  /// Erases semantic actions, yielding the underlying regex. Memoized
  /// per (factory, grammar node): the instruction grammars share their
  /// modrm/immediate subtrees, so each shared subtree is walked once per
  /// factory instead of once per mention. The factory retains the node
  /// (see Factory::stripCacheStore), so the cache can never hit a
  /// recycled address.
  re::Regex strip(re::Factory &F) const {
    if (re::Regex Cached = F.stripCacheLookup(Impl.get()))
      return Cached;
    re::Regex R = Impl->strip(F);
    F.stripCacheStore(Impl.get(), Impl, R);
    return R;
  }
};

//===----------------------------------------------------------------------===//
// Node implementations.
//===----------------------------------------------------------------------===//

template <typename T> Grammar<T> voidG();
template <typename T> Grammar<T> pure(T V);
template <typename A, typename B>
Grammar<std::pair<A, B>> cat(Grammar<A> GA, Grammar<B> GB);
template <typename T> Grammar<T> alt(Grammar<T> GA, Grammar<T> GB);
template <typename A, typename B>
Grammar<B> mapG(Grammar<A> G, std::function<B(const A &)> F);
template <typename T> Grammar<std::vector<T>> star(Grammar<T> G);

namespace detail {

template <typename T> class VoidNode final : public Node<T> {
public:
  Grammar<T> derivBit(bool) const override { return voidG<T>(); }
  Grammar<T> nullify() const override { return voidG<T>(); }
  void extract(std::vector<T> &) const override {}
  re::Regex strip(re::Factory &F) const override { return F.voidRe(); }
  bool isVoid() const override { return true; }
};

/// Matches only the empty string and yields exactly one value. Eps is
/// PureNode<Unit>; derivatives of Any/Bit also produce Pure nodes, which
/// is how consumed input flows into semantic values.
template <typename T> class PureNode final : public Node<T> {
  T Value;

public:
  explicit PureNode(T V) : Value(std::move(V)) {}
  Grammar<T> derivBit(bool) const override { return voidG<T>(); }
  Grammar<T> nullify() const override { return pure(Value); }
  void extract(std::vector<T> &Out) const override { Out.push_back(Value); }
  re::Regex strip(re::Factory &F) const override { return F.epsRe(); }
};

class BitNode final : public Node<Unit> {
  bool Expected;

public:
  explicit BitNode(bool B) : Expected(B) {}
  Grammar<Unit> derivBit(bool Bit) const override {
    return Bit == Expected ? pure(Unit{}) : voidG<Unit>();
  }
  Grammar<Unit> nullify() const override { return voidG<Unit>(); }
  void extract(std::vector<Unit> &) const override {}
  re::Regex strip(re::Factory &F) const override { return F.bit(Expected); }
};

class AnyNode final : public Node<bool> {
public:
  Grammar<bool> derivBit(bool Bit) const override { return pure(Bit); }
  Grammar<bool> nullify() const override { return voidG<bool>(); }
  void extract(std::vector<bool> &) const override {}
  re::Regex strip(re::Factory &F) const override { return F.any(); }
};

template <typename A, typename B>
class CatNode final : public Node<std::pair<A, B>> {
  Grammar<A> GA;
  Grammar<B> GB;

public:
  CatNode(Grammar<A> A_, Grammar<B> B_)
      : GA(std::move(A_)), GB(std::move(B_)) {}

  Grammar<std::pair<A, B>> derivBit(bool Bit) const override {
    // deriv(Cat g1 g2) = Alt (Cat (deriv g1) g2) (Cat (null g1) (deriv g2)).
    // Only differentiate g2 when g1 is nullable — otherwise the second
    // branch is Void and recursing into g2 would make derivatives of
    // right-nested Cat chains quadratic.
    Grammar<A> NullA = GA.nullify();
    Grammar<std::pair<A, B>> Left = cat(GA.derivBit(Bit), GB);
    if (NullA.isVoid())
      return Left;
    return alt(Left, cat(NullA, GB.derivBit(Bit)));
  }

  Grammar<std::pair<A, B>> nullify() const override {
    return cat(GA.nullify(), GB.nullify());
  }

  void extract(std::vector<std::pair<A, B>> &Out) const override {
    std::vector<A> As = GA.extract();
    if (As.empty())
      return;
    std::vector<B> Bs = GB.extract();
    for (const A &VA : As)
      for (const B &VB : Bs)
        Out.emplace_back(VA, VB);
  }

  re::Regex strip(re::Factory &F) const override {
    return F.cat(GA.strip(F), GB.strip(F));
  }
};

template <typename T> class AltNode final : public Node<T> {
  Grammar<T> GA;
  Grammar<T> GB;

public:
  AltNode(Grammar<T> A_, Grammar<T> B_)
      : GA(std::move(A_)), GB(std::move(B_)) {}

  Grammar<T> derivBit(bool Bit) const override {
    return alt(GA.derivBit(Bit), GB.derivBit(Bit));
  }
  Grammar<T> nullify() const override {
    return alt(GA.nullify(), GB.nullify());
  }
  void extract(std::vector<T> &Out) const override {
    for (T &V : GA.extract())
      Out.push_back(std::move(V));
    for (T &V : GB.extract())
      Out.push_back(std::move(V));
  }
  re::Regex strip(re::Factory &F) const override {
    return F.alt(GA.strip(F), GB.strip(F));
  }
};

template <typename A, typename B> class MapNode final : public Node<B> {
  Grammar<A> G;
  std::function<B(const A &)> F;

public:
  MapNode(Grammar<A> G_, std::function<B(const A &)> F_)
      : G(std::move(G_)), F(std::move(F_)) {}

  Grammar<B> derivBit(bool Bit) const override {
    return mapG<A, B>(G.derivBit(Bit), F);
  }
  Grammar<B> nullify() const override { return mapG<A, B>(G.nullify(), F); }
  void extract(std::vector<B> &Out) const override {
    for (const A &V : G.extract())
      Out.push_back(F(V));
  }
  re::Regex strip(re::Factory &Fac) const override { return G.strip(Fac); }
};

template <typename T> class StarNode final : public Node<std::vector<T>> {
  Grammar<T> G;

public:
  explicit StarNode(Grammar<T> G_) : G(std::move(G_)) {}

  Grammar<std::vector<T>> derivBit(bool Bit) const override {
    // deriv(Star g) = Map (::) (Cat (deriv g) (Star g))
    Grammar<std::pair<T, std::vector<T>>> D = cat(G.derivBit(Bit), star(G));
    return mapG<std::pair<T, std::vector<T>>, std::vector<T>>(
        D, [](const std::pair<T, std::vector<T>> &P) {
          std::vector<T> Out;
          Out.reserve(P.second.size() + 1);
          Out.push_back(P.first);
          Out.insert(Out.end(), P.second.begin(), P.second.end());
          return Out;
        });
  }
  Grammar<std::vector<T>> nullify() const override {
    return pure(std::vector<T>{});
  }
  void extract(std::vector<std::vector<T>> &Out) const override {
    Out.push_back({});
  }
  re::Regex strip(re::Factory &F) const override {
    return F.star(G.strip(F));
  }
};

} // namespace detail

//===----------------------------------------------------------------------===//
// Smart constructors.
//===----------------------------------------------------------------------===//

/// The empty grammar (matches nothing).
template <typename T> Grammar<T> voidG() {
  static const Grammar<T> Singleton(std::make_shared<detail::VoidNode<T>>());
  return Singleton;
}

/// Matches the empty string, producing \p V.
template <typename T> Grammar<T> pure(T V) {
  return Grammar<T>(std::make_shared<detail::PureNode<T>>(std::move(V)));
}

/// Matches the empty string, producing Unit (the paper's Eps).
inline Grammar<Unit> eps() { return pure(Unit{}); }

/// Matches the single bit \p B.
inline Grammar<Unit> bitLit(bool B) {
  return Grammar<Unit>(std::make_shared<detail::BitNode>(B));
}

/// Matches any single bit, producing it.
inline Grammar<bool> anyBit() {
  return Grammar<bool>(std::make_shared<detail::AnyNode>());
}

/// Concatenation with Void propagation.
template <typename A, typename B>
Grammar<std::pair<A, B>> cat(Grammar<A> GA, Grammar<B> GB) {
  if (GA.isVoid() || GB.isVoid())
    return voidG<std::pair<A, B>>();
  return Grammar<std::pair<A, B>>(
      std::make_shared<detail::CatNode<A, B>>(std::move(GA), std::move(GB)));
}

/// Alternation with Void pruning.
template <typename T> Grammar<T> alt(Grammar<T> GA, Grammar<T> GB) {
  if (GA.isVoid())
    return GB;
  if (GB.isVoid())
    return GA;
  return Grammar<T>(
      std::make_shared<detail::AltNode<T>>(std::move(GA), std::move(GB)));
}

/// Semantic action (the paper's `g @ f`).
template <typename A, typename B>
Grammar<B> mapG(Grammar<A> G, std::function<B(const A &)> F) {
  if (G.isVoid())
    return voidG<B>();
  return Grammar<B>(
      std::make_shared<detail::MapNode<A, B>>(std::move(G), std::move(F)));
}

/// mapG with the result type deduced from the callable.
template <typename F, typename A>
auto mapWith(Grammar<A> G, F Fn) -> Grammar<decltype(Fn(std::declval<A>()))> {
  using B = decltype(Fn(std::declval<A>()));
  return mapG<A, B>(std::move(G), std::function<B(const A &)>(std::move(Fn)));
}

/// Kleene star.
template <typename T> Grammar<std::vector<T>> star(Grammar<T> G) {
  return Grammar<std::vector<T>>(
      std::make_shared<detail::StarNode<T>>(std::move(G)));
}

//===----------------------------------------------------------------------===//
// Derived forms used throughout the instruction grammars.
//===----------------------------------------------------------------------===//

/// Sequencing that keeps only the right value (the paper's `$$`).
template <typename A, typename B>
Grammar<B> then(Grammar<A> GA, Grammar<B> GB) {
  return mapWith(cat(std::move(GA), std::move(GB)),
                 [](const std::pair<A, B> &P) { return P.second; });
}

/// Sequencing that keeps only the left value.
template <typename A, typename B>
Grammar<A> before(Grammar<A> GA, Grammar<B> GB) {
  return mapWith(cat(std::move(GA), std::move(GB)),
                 [](const std::pair<A, B> &P) { return P.first; });
}

/// A literal bit string such as "1110" (MSB first), yielding Unit.
inline Grammar<Unit> bitsG(std::string_view Pattern) {
  Grammar<Unit> Out = eps();
  for (size_t I = Pattern.size(); I > 0; --I) {
    char C = Pattern[I - 1];
    assert((C == '0' || C == '1') && "bit pattern must be 0s and 1s");
    Out = then(bitLit(C == '1'), Out);
  }
  return Out;
}

/// Exactly \p N arbitrary bits interpreted MSB-first as an unsigned
/// integer (N <= 32). Grammars are immutable, so each width is built
/// once and shared by every caller — subsystems that strip or
/// differentiate many forms then memoize these subtrees by identity.
inline Grammar<uint32_t> field(unsigned N) {
  assert(N <= 32 && "field too wide");
  static const std::vector<Grammar<uint32_t>> Cache = [] {
    std::vector<Grammar<uint32_t>> C(33);
    C[0] = pure<uint32_t>(0);
    for (unsigned I = 1; I <= 32; ++I)
      C[I] = mapWith(cat(anyBit(), C[I - 1]),
                     [I](const std::pair<bool, uint32_t> &P) -> uint32_t {
                       return (uint32_t(P.first) << (I - 1)) | P.second;
                     });
    return C;
  }();
  return Cache[N];
}

/// One arbitrary byte (8 bits, MSB first).
inline Grammar<uint8_t> byteG() {
  static const Grammar<uint8_t> G = mapWith(
      field(8), [](uint32_t V) { return static_cast<uint8_t>(V); });
  return G;
}

/// A 16-bit little-endian immediate ("halfword" in the paper).
inline Grammar<uint16_t> halfwordLE() {
  static const Grammar<uint16_t> G =
      mapWith(cat(byteG(), byteG()),
              [](const std::pair<uint8_t, uint8_t> &P) {
                return static_cast<uint16_t>(P.first |
                                             (uint16_t(P.second) << 8));
              });
  return G;
}

/// A 32-bit little-endian immediate ("word" in the paper).
inline Grammar<uint32_t> wordLE() {
  static const Grammar<uint32_t> G =
      mapWith(cat(halfwordLE(), halfwordLE()),
              [](const std::pair<uint16_t, uint16_t> &P) {
                return uint32_t(P.first) | (uint32_t(P.second) << 16);
              });
  return G;
}

//===----------------------------------------------------------------------===//
// Parsing driver.
//===----------------------------------------------------------------------===//

/// Result of decoding a prefix of a byte stream.
template <typename T> struct ParseResult {
  bool Matched = false;
  T Value{};
  size_t Length = 0; ///< bytes consumed
};

/// Finds the shortest byte prefix of [Data, Data+Size) accepted by \p G
/// and returns its (unique, for unambiguous grammars) semantic value.
/// Fails if the derivative becomes Void or \p MaxLen bytes pass without
/// acceptance.
template <typename T>
ParseResult<T> parsePrefix(const Grammar<T> &G, const uint8_t *Data,
                           size_t Size, size_t MaxLen = 15) {
  ParseResult<T> R;
  Grammar<T> Cur = G;
  size_t Limit = Size < MaxLen ? Size : MaxLen;
  for (size_t I = 0; I < Limit; ++I) {
    Cur = Cur.derivByte(Data[I]);
    if (Cur.isVoid())
      return R;
    std::vector<T> Vals = Cur.extract();
    if (!Vals.empty()) {
      R.Matched = true;
      R.Value = std::move(Vals.front());
      R.Length = I + 1;
      return R;
    }
  }
  return R;
}

/// True iff \p G accepts exactly the whole byte string.
template <typename T>
bool matchesExactly(const Grammar<T> &G, const std::vector<uint8_t> &Bytes) {
  Grammar<T> Cur = G;
  for (uint8_t B : Bytes) {
    Cur = Cur.derivByte(B);
    if (Cur.isVoid())
      return false;
  }
  return !Cur.extract().empty();
}

} // namespace gram
} // namespace rocksalt

#endif // ROCKSALT_GRAMMAR_GRAMMAR_H
