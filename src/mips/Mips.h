//===- mips/Mips.h - A MIPS model built from the same DSLs -----*- C++ -*-===//
///
/// \file
/// The paper's DSLs are architecture independent: "one of the
/// undergraduate co-authors constructed a model of the MIPS architecture
/// using our DSLs in just a few days" (section 1). This module plays
/// that role for the reproduction: a MIPS-I integer subset whose decoder
/// is written with exactly the same grammar combinators (and therefore
/// inherits derivative-based parsing, DFA generation, and the ambiguity
/// analysis for free), plus a small direct interpreter.
///
/// Encoding reference: the classic 32-bit R/I/J formats, big-endian bit
/// order within the word (our grammars consume MSB-first, so a word is
/// fed as its four bytes from most to least significant).
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_MIPS_MIPS_H
#define ROCKSALT_MIPS_MIPS_H

#include "grammar/Grammar.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rocksalt {
namespace mips {

enum class Op : uint8_t {
  // R-type
  ADDU, SUBU, AND, OR, XOR, NOR, SLT, SLTU, SLL, SRL, SRA, JR,
  // I-type
  ADDIU, ANDI, ORI, XORI, SLTI, SLTIU, LUI, LW, SW, BEQ, BNE,
  // J-type
  J, JAL
};

const char *opName(Op O);

/// One decoded MIPS instruction (fields beyond the format are zero).
struct Instr {
  Op Opc = Op::SLL;
  uint8_t Rs = 0, Rt = 0, Rd = 0, Shamt = 0;
  uint16_t Imm = 0;    ///< I-type immediate
  uint32_t Target = 0; ///< J-type 26-bit target

  bool operator==(const Instr &O) const {
    return Opc == O.Opc && Rs == O.Rs && Rt == O.Rt && Rd == O.Rd &&
           Shamt == O.Shamt && Imm == O.Imm && Target == O.Target;
  }
};

/// The instruction grammar (a Grammar<Instr> over the 32 bits of one
/// word) and its named per-form pieces for the ambiguity analysis.
struct MipsGrammars {
  std::vector<std::pair<std::string, gram::Grammar<Instr>>> Forms;
  gram::Grammar<Instr> Full;
};
const MipsGrammars &mipsGrammars();

/// Decodes one big-endian instruction word.
std::optional<Instr> decode(uint32_t Word);

/// Encodes back to a word (the inverse used by round-trip tests).
uint32_t encode(const Instr &I);

std::string printInstr(const Instr &I);

//===----------------------------------------------------------------------===//
// A minimal machine + interpreter (direct; the RTL language in this
// repository is instantiated for the x86 state, so MIPS gets the small
// executable semantics the paper's undergraduate model would have).
//===----------------------------------------------------------------------===//

class Machine {
public:
  std::array<uint32_t, 32> Regs{};
  uint32_t Pc = 0;
  std::vector<uint8_t> Mem; ///< flat little memory, big-endian words
  bool Halted = false;      ///< set by `jr $zero` convention or bad pc

  explicit Machine(size_t MemBytes = 65536) : Mem(MemBytes, 0) {}

  uint32_t loadWord(uint32_t Addr) const;
  void storeWord(uint32_t Addr, uint32_t V);

  /// Loads a program (word array) at address 0 and resets the PC.
  void loadProgram(const std::vector<uint32_t> &Words);

  /// Executes one instruction; returns false when halted (or on an
  /// undecodable word / out-of-range access).
  bool step();

  /// Runs at most \p MaxSteps instructions; returns steps executed.
  uint64_t run(uint64_t MaxSteps);
};

} // namespace mips
} // namespace rocksalt

#endif // ROCKSALT_MIPS_MIPS_H
