//===- mips/MipsPolicy.cpp ------------------------------------*- C++ -*-===//

#include "mips/MipsPolicy.h"

#include "regex/Algebra.h"

#include <stdexcept>
#include <string>

using namespace rocksalt;
using namespace rocksalt::mips;
using re::Factory;
using re::Regex;

namespace {

/// A 32-bit instruction word as the MSB-first bit string the grammars
/// consume (mips/Mips.h feeds words big-endian, four bytes most- to
/// least-significant).
std::string wordBits(uint32_t W) {
  std::string S(32, '0');
  for (int I = 0; I < 32; ++I)
    if ((W >> (31 - I)) & 1)
      S[I] = '1';
  return S;
}

/// The fixed mask half: `and $t9, $t9, $t6`.
uint32_t maskWord() {
  Instr I;
  I.Opc = Op::AND;
  I.Rs = MipsJumpReg;
  I.Rt = MipsMaskReg;
  I.Rd = MipsJumpReg;
  return encode(I);
}

/// The fixed jump half: `jr $t9` (rt, rd, shamt all zero).
uint32_t jrWord() {
  Instr I;
  I.Opc = Op::JR;
  I.Rs = MipsJumpReg;
  return encode(I);
}

/// nacljmp for MIPS: the one allowed indirect-jump sequence, eight
/// fixed bytes (contrast x86's per-register union — MIPS NaCl routes
/// every indirect jump through $t9).
Regex mipsMaskedJumpRe(Factory &F) {
  return F.cat(F.bits(wordBits(maskWord())), F.bits(wordBits(jrWord())));
}

bool isDirectJumpForm(const std::string &Name) {
  return Name == "beq" || Name == "bne" || Name == "j" || Name == "jal";
}

/// Control-flow forms are carved out of NoControlFlow: the direct
/// jumps go to DirectJump, and `jr` goes nowhere — a naked indirect
/// jump is exactly what the sandbox forbids (it is only legal as the
/// second half of the masked pair).
bool isControlFlowForm(const std::string &Name) {
  return Name == "jr" || isDirectJumpForm(Name);
}

struct MipsPolicyRegexes {
  Regex NoControlFlow = nullptr;
  Regex DirectJump = nullptr;
  Regex MaskedJump = nullptr;
};

MipsPolicyRegexes buildMipsPolicyRegexes(Factory &F) {
  std::vector<Regex> Ncf, Dj;
  for (const auto &[Name, Gr] : mipsGrammars().Forms) {
    if (isDirectJumpForm(Name))
      Dj.push_back(Gr.strip(F));
    else if (!isControlFlowForm(Name))
      Ncf.push_back(Gr.strip(F));
  }
  MipsPolicyRegexes P;
  P.NoControlFlow = F.altN(std::move(Ncf));
  P.DirectJump = F.altN(std::move(Dj));
  P.MaskedJump = mipsMaskedJumpRe(F);
  return P;
}

} // namespace

re::Regex mips::mipsDecoderRegex(Factory &F) {
  return mipsGrammars().Full.strip(F);
}

core::PolicyTables mips::buildMipsPolicyTablesRaw() {
  Factory F;
  MipsPolicyRegexes P = buildMipsPolicyRegexes(F);
  core::PolicyTables T;
  T.NoControlFlow = re::buildDfa(F, P.NoControlFlow);
  T.DirectJump = re::buildDfa(F, P.DirectJump);
  T.MaskedJump = re::buildDfa(F, P.MaskedJump);
  return T;
}

core::PolicyTables mips::buildMipsPolicyTables() {
  core::PolicyTables T = buildMipsPolicyTablesRaw();
  T.NoControlFlow = re::minimizeDfa(T.NoControlFlow);
  T.DirectJump = re::minimizeDfa(T.DirectJump);
  T.MaskedJump = re::minimizeDfa(T.MaskedJump);
  if (T.NoControlFlow.numStates() != MipsNoControlFlowStates ||
      T.DirectJump.numStates() != MipsDirectJumpStates ||
      T.MaskedJump.numStates() != MipsMaskedJumpStates)
    throw std::logic_error(
        "MIPS policy table state counts diverged from the pinned constants "
        "in mips/MipsPolicy.h (got " +
        std::to_string(T.NoControlFlow.numStates()) + "/" +
        std::to_string(T.DirectJump.numStates()) + "/" +
        std::to_string(T.MaskedJump.numStates()) +
        ") — a grammar change altered the minimized tables");
  return T;
}

const core::TableEntry &mips::mipsTableEntry() {
  return core::TableRegistry::instance().getOrBuild(
      core::TableKey{core::IsaMips, core::PolicySetNacl,
                     re::TableFormatVersion},
      buildMipsPolicyTables);
}

namespace {

/// The paper's `extract` for MIPS: the destination of the direct jump
/// whose match spans [Start, End). beq/bne branch pc-relative from the
/// *following* word (End here — the model has no delay slot); j/jal
/// carry an absolute word index within the image. Returns false when
/// the destination lies outside [0, Size), like the x86 extract.
bool extractMipsTarget(const uint8_t *Code, uint32_t Start, uint32_t End,
                       uint32_t Size, uint32_t *DestOut) {
  uint8_t Opcode = Code[Start] >> 2;
  uint32_t Dest;
  if (Opcode == 0x04 || Opcode == 0x05) { // beq / bne
    uint16_t Imm = uint16_t((uint16_t(Code[Start + 2]) << 8) | Code[Start + 3]);
    Dest = End + (uint32_t(int32_t(int16_t(Imm))) << 2);
  } else { // j / jal
    uint32_t Target26 = (uint32_t(Code[Start] & 0x03) << 24) |
                        (uint32_t(Code[Start + 1]) << 16) |
                        (uint32_t(Code[Start + 2]) << 8) | Code[Start + 3];
    Dest = Target26 << 2;
  }
  if (Dest >= Size)
    return false;
  *DestOut = Dest;
  return true;
}

} // namespace

core::CheckResult mips::checkMips(const core::PolicyTables &T,
                                  const uint8_t *Code, uint32_t Size) {
  core::CheckResult R;
  R.Valid.assign(Size, 0);
  R.Target.assign(Size, 0);
  R.PairJmp.assign(Size, 0);

  // The same Figure-5 chain as core::checkLegacy, per-table priority
  // MaskedJump > NoControlFlow > DirectJump; only the target extraction
  // and the bundle size are MIPS.
  uint32_t Pos = 0;
  while (Pos < Size) {
    R.Valid[Pos] = 1;
    uint32_t Start = Pos;
    if (core::dfaMatch(T.MaskedJump, Code, &Pos, Size)) {
      R.PairJmp[Pos - MipsMaskedJumpHalfLen] = 1;
      continue;
    }
    if (core::dfaMatch(T.NoControlFlow, Code, &Pos, Size))
      continue;
    if (core::dfaMatch(T.DirectJump, Code, &Pos, Size)) {
      uint32_t Dest = 0;
      if (!extractMipsTarget(Code, Start, Pos, Size, &Dest)) {
        R.Ok = false;
        R.Reason = core::RejectReason::NoParse;
        return R;
      }
      R.Target[Dest] = 1;
      continue;
    }
    R.Ok = false;
    R.Reason = core::RejectReason::NoParse;
    return R;
  }

  core::finalizeCheck(R, MipsBundleSize);
  return R;
}

core::CheckResult mips::checkMips(const uint8_t *Code, uint32_t Size) {
  return checkMips(*mipsTableEntry().Tables, Code, Size);
}
