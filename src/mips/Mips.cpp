//===- mips/Mips.cpp ------------------------------------------*- C++ -*-===//

#include "mips/Mips.h"

#include <cassert>

using namespace rocksalt;
using namespace rocksalt::mips;
using namespace rocksalt::gram;

const char *mips::opName(Op O) {
  static const char *Names[] = {"addu", "subu", "and",  "or",   "xor",
                                "nor",  "slt",  "sltu", "sll",  "srl",
                                "sra",  "jr",   "addiu", "andi", "ori",
                                "xori", "slti", "sltiu", "lui",  "lw",
                                "sw",   "beq",  "bne",   "j",    "jal"};
  return Names[static_cast<unsigned>(O)];
}

namespace {

std::string bitString(uint32_t V, int N) {
  std::string S(N, '0');
  for (int I = 0; I < N; ++I)
    if ((V >> (N - 1 - I)) & 1)
      S[I] = '1';
  return S;
}

Grammar<uint32_t> reg5() { return field(5); }
Grammar<uint32_t> imm16() { return field(16); }

/// R-type: 000000 rs rt rd shamt funct.
Grammar<Instr> rType(Op O, uint8_t Funct) {
  return mapWith(
      then(bitsG("000000"),
           cat(reg5(), cat(reg5(), cat(reg5(),
                                       before(field(5),
                                              bitsG(bitString(Funct, 6))))))),
      [O](const std::pair<uint32_t,
                          std::pair<uint32_t,
                                    std::pair<uint32_t, uint32_t>>> &P) {
        Instr I;
        I.Opc = O;
        I.Rs = uint8_t(P.first);
        I.Rt = uint8_t(P.second.first);
        I.Rd = uint8_t(P.second.second.first);
        I.Shamt = uint8_t(P.second.second.second);
        return I;
      });
}

/// I-type: opcode rs rt imm16.
Grammar<Instr> iType(Op O, uint8_t Opcode) {
  return mapWith(
      then(bitsG(bitString(Opcode, 6)), cat(reg5(), cat(reg5(), imm16()))),
      [O](const std::pair<uint32_t, std::pair<uint32_t, uint32_t>> &P) {
        Instr I;
        I.Opc = O;
        I.Rs = uint8_t(P.first);
        I.Rt = uint8_t(P.second.first);
        I.Imm = uint16_t(P.second.second);
        return I;
      });
}

/// J-type: opcode target26.
Grammar<Instr> jType(Op O, uint8_t Opcode) {
  return mapWith(then(bitsG(bitString(Opcode, 6)), field(26)),
                 [O](uint32_t T) {
                   Instr I;
                   I.Opc = O;
                   I.Target = T;
                   return I;
                 });
}

const MipsGrammars *buildGrammars() {
  auto *G = new MipsGrammars;
  auto Add = [G](const char *Name, Grammar<Instr> Gr) {
    G->Forms.emplace_back(Name, std::move(Gr));
  };

  // R-type funct codes from the MIPS-I manual.
  Add("sll", rType(Op::SLL, 0x00));
  Add("srl", rType(Op::SRL, 0x02));
  Add("sra", rType(Op::SRA, 0x03));
  Add("jr", rType(Op::JR, 0x08));
  Add("addu", rType(Op::ADDU, 0x21));
  Add("subu", rType(Op::SUBU, 0x23));
  Add("and", rType(Op::AND, 0x24));
  Add("or", rType(Op::OR, 0x25));
  Add("xor", rType(Op::XOR, 0x26));
  Add("nor", rType(Op::NOR, 0x27));
  Add("slt", rType(Op::SLT, 0x2A));
  Add("sltu", rType(Op::SLTU, 0x2B));

  Add("beq", iType(Op::BEQ, 0x04));
  Add("bne", iType(Op::BNE, 0x05));
  Add("addiu", iType(Op::ADDIU, 0x09));
  Add("slti", iType(Op::SLTI, 0x0A));
  Add("sltiu", iType(Op::SLTIU, 0x0B));
  Add("andi", iType(Op::ANDI, 0x0C));
  Add("ori", iType(Op::ORI, 0x0D));
  Add("xori", iType(Op::XORI, 0x0E));
  Add("lui", iType(Op::LUI, 0x0F));
  Add("lw", iType(Op::LW, 0x23));
  Add("sw", iType(Op::SW, 0x2B));

  Add("j", jType(Op::J, 0x02));
  Add("jal", jType(Op::JAL, 0x03));

  Grammar<Instr> Full = voidG<Instr>();
  for (auto &[Name, Gr] : G->Forms)
    Full = alt(Full, Gr);
  G->Full = Full;
  return G;
}

} // namespace

const MipsGrammars &mips::mipsGrammars() {
  static const MipsGrammars *G = buildGrammars();
  return *G;
}

std::optional<Instr> mips::decode(uint32_t Word) {
  uint8_t Bytes[4] = {uint8_t(Word >> 24), uint8_t(Word >> 16),
                      uint8_t(Word >> 8), uint8_t(Word)};
  gram::ParseResult<Instr> R =
      gram::parsePrefix(mipsGrammars().Full, Bytes, 4, 4);
  if (!R.Matched || R.Length != 4)
    return std::nullopt;
  return R.Value;
}

uint32_t mips::encode(const Instr &I) {
  auto R = [&](uint8_t Funct) {
    return (uint32_t(I.Rs) << 21) | (uint32_t(I.Rt) << 16) |
           (uint32_t(I.Rd) << 11) | (uint32_t(I.Shamt) << 6) | Funct;
  };
  auto Itype = [&](uint8_t Opc) {
    return (uint32_t(Opc) << 26) | (uint32_t(I.Rs) << 21) |
           (uint32_t(I.Rt) << 16) | I.Imm;
  };
  switch (I.Opc) {
  case Op::SLL: return R(0x00);
  case Op::SRL: return R(0x02);
  case Op::SRA: return R(0x03);
  case Op::JR: return R(0x08);
  case Op::ADDU: return R(0x21);
  case Op::SUBU: return R(0x23);
  case Op::AND: return R(0x24);
  case Op::OR: return R(0x25);
  case Op::XOR: return R(0x26);
  case Op::NOR: return R(0x27);
  case Op::SLT: return R(0x2A);
  case Op::SLTU: return R(0x2B);
  case Op::BEQ: return Itype(0x04);
  case Op::BNE: return Itype(0x05);
  case Op::ADDIU: return Itype(0x09);
  case Op::SLTI: return Itype(0x0A);
  case Op::SLTIU: return Itype(0x0B);
  case Op::ANDI: return Itype(0x0C);
  case Op::ORI: return Itype(0x0D);
  case Op::XORI: return Itype(0x0E);
  case Op::LUI: return Itype(0x0F);
  case Op::LW: return Itype(0x23);
  case Op::SW: return Itype(0x2B);
  case Op::J: return (0x02u << 26) | (I.Target & 0x03FFFFFF);
  case Op::JAL: return (0x03u << 26) | (I.Target & 0x03FFFFFF);
  }
  return 0;
}

std::string mips::printInstr(const Instr &I) {
  char Buf[64];
  switch (I.Opc) {
  case Op::SLL: case Op::SRL: case Op::SRA:
    std::snprintf(Buf, sizeof(Buf), "%s $%u, $%u, %u", opName(I.Opc), I.Rd,
                  I.Rt, I.Shamt);
    break;
  case Op::JR:
    std::snprintf(Buf, sizeof(Buf), "jr $%u", I.Rs);
    break;
  case Op::J: case Op::JAL:
    std::snprintf(Buf, sizeof(Buf), "%s 0x%x", opName(I.Opc), I.Target << 2);
    break;
  case Op::ADDU: case Op::SUBU: case Op::AND: case Op::OR: case Op::XOR:
  case Op::NOR: case Op::SLT: case Op::SLTU:
    std::snprintf(Buf, sizeof(Buf), "%s $%u, $%u, $%u", opName(I.Opc), I.Rd,
                  I.Rs, I.Rt);
    break;
  default:
    std::snprintf(Buf, sizeof(Buf), "%s $%u, $%u, 0x%x", opName(I.Opc),
                  I.Rt, I.Rs, I.Imm);
    break;
  }
  return Buf;
}

//===----------------------------------------------------------------------===//
// Interpreter.
//===----------------------------------------------------------------------===//

uint32_t Machine::loadWord(uint32_t Addr) const {
  if (Addr + 3 >= Mem.size())
    return 0;
  return (uint32_t(Mem[Addr]) << 24) | (uint32_t(Mem[Addr + 1]) << 16) |
         (uint32_t(Mem[Addr + 2]) << 8) | Mem[Addr + 3];
}

void Machine::storeWord(uint32_t Addr, uint32_t V) {
  if (Addr + 3 >= Mem.size())
    return;
  Mem[Addr] = uint8_t(V >> 24);
  Mem[Addr + 1] = uint8_t(V >> 16);
  Mem[Addr + 2] = uint8_t(V >> 8);
  Mem[Addr + 3] = uint8_t(V);
}

void Machine::loadProgram(const std::vector<uint32_t> &Words) {
  for (size_t I = 0; I < Words.size(); ++I)
    storeWord(uint32_t(I * 4), Words[I]);
  Pc = 0;
  Halted = false;
}

bool Machine::step() {
  if (Halted || Pc + 3 >= Mem.size()) {
    Halted = true;
    return false;
  }
  std::optional<Instr> D = decode(loadWord(Pc));
  if (!D) {
    Halted = true;
    return false;
  }
  const Instr &I = *D;
  uint32_t Next = Pc + 4;
  auto SxImm = [&] { return uint32_t(int32_t(int16_t(I.Imm))); };

  switch (I.Opc) {
  case Op::ADDU: Regs[I.Rd] = Regs[I.Rs] + Regs[I.Rt]; break;
  case Op::SUBU: Regs[I.Rd] = Regs[I.Rs] - Regs[I.Rt]; break;
  case Op::AND: Regs[I.Rd] = Regs[I.Rs] & Regs[I.Rt]; break;
  case Op::OR: Regs[I.Rd] = Regs[I.Rs] | Regs[I.Rt]; break;
  case Op::XOR: Regs[I.Rd] = Regs[I.Rs] ^ Regs[I.Rt]; break;
  case Op::NOR: Regs[I.Rd] = ~(Regs[I.Rs] | Regs[I.Rt]); break;
  case Op::SLT:
    Regs[I.Rd] = int32_t(Regs[I.Rs]) < int32_t(Regs[I.Rt]);
    break;
  case Op::SLTU: Regs[I.Rd] = Regs[I.Rs] < Regs[I.Rt]; break;
  case Op::SLL: Regs[I.Rd] = Regs[I.Rt] << I.Shamt; break;
  case Op::SRL: Regs[I.Rd] = Regs[I.Rt] >> I.Shamt; break;
  case Op::SRA:
    Regs[I.Rd] = uint32_t(int32_t(Regs[I.Rt]) >> I.Shamt);
    break;
  case Op::JR:
    if (Regs[I.Rs] == 0 && I.Rs == 0) {
      Halted = true; // `jr $zero`: the halt convention
      return false;
    }
    Next = Regs[I.Rs];
    break;
  case Op::ADDIU: Regs[I.Rt] = Regs[I.Rs] + SxImm(); break;
  case Op::ANDI: Regs[I.Rt] = Regs[I.Rs] & I.Imm; break;
  case Op::ORI: Regs[I.Rt] = Regs[I.Rs] | I.Imm; break;
  case Op::XORI: Regs[I.Rt] = Regs[I.Rs] ^ I.Imm; break;
  case Op::SLTI:
    Regs[I.Rt] = int32_t(Regs[I.Rs]) < int32_t(SxImm());
    break;
  case Op::SLTIU: Regs[I.Rt] = Regs[I.Rs] < SxImm(); break;
  case Op::LUI: Regs[I.Rt] = uint32_t(I.Imm) << 16; break;
  case Op::LW: Regs[I.Rt] = loadWord(Regs[I.Rs] + SxImm()); break;
  case Op::SW: storeWord(Regs[I.Rs] + SxImm(), Regs[I.Rt]); break;
  case Op::BEQ:
    if (Regs[I.Rs] == Regs[I.Rt])
      Next = Pc + 4 + (SxImm() << 2);
    break;
  case Op::BNE:
    if (Regs[I.Rs] != Regs[I.Rt])
      Next = Pc + 4 + (SxImm() << 2);
    break;
  case Op::J: Next = I.Target << 2; break;
  case Op::JAL:
    Regs[31] = Pc + 4;
    Next = I.Target << 2;
    break;
  }
  Regs[0] = 0; // $zero is hard-wired
  Pc = Next;
  return true;
}

uint64_t Machine::run(uint64_t MaxSteps) {
  uint64_t N = 0;
  while (N < MaxSteps && step())
    ++N;
  return N;
}
