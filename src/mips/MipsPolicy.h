//===- mips/MipsPolicy.h - The NaCl sandbox policy for MIPS ----*- C++ -*-===//
///
/// \file
/// The second tenant of the multi-ISA table registry: the aligned NaCl
/// sandbox policy instantiated for the MIPS-I model (mips/Mips.h). The
/// paper's point — and the registry's — is that the checker core is
/// ISA-generic: the same three-grammar shape (NoControlFlow /
/// DirectJump / MaskedJump), the same derivative → DFA → Hopcroft
/// pipeline, the same 13 audit obligations, the same RSTB blob format
/// (now ISA-tagged), just a different grammar underneath.
///
/// The MIPS instantiation follows the NaCl MIPS ABI conventions:
///
///  * MaskedJump — the two-instruction indirect-jump sequence
///    `and $t9, $t9, $t6` immediately followed by `jr $t9`: indirect
///    control flow goes only through $t9, masked against the code mask
///    held in the reserved register $t6. Eight fixed bytes;
///  * DirectJump — beq / bne (pc-relative) and j / jal (absolute);
///  * NoControlFlow — every other decodable form. A bare `jr` is
///    deliberately absent: naked indirect jumps are exactly what the
///    sandbox forbids.
///
/// Fixed-width 32-bit words make the walk simpler than x86's — every
/// match is 4 bytes (8 for the pair) — but nothing in the chain or the
/// finalize pass changes: `checkMips` is the same Figure-5 procedure
/// with a 16-byte bundle and MIPS target extraction.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_MIPS_MIPSPOLICY_H
#define ROCKSALT_MIPS_MIPSPOLICY_H

#include "core/TableRegistry.h"
#include "core/Verifier.h"
#include "mips/Mips.h"

namespace rocksalt {
namespace mips {

/// The bundle size of the MIPS aligned policy: 16 bytes (four
/// instructions), the NaCl MIPS granularity.
constexpr uint32_t MipsBundleSize = 16;

/// Indirect jumps go only through $t9 (= $25), the NaCl MIPS
/// convention (position-independent calls already route through $t9).
constexpr uint8_t MipsJumpReg = 25;

/// The code mask lives in the reserved register $t6 (= $14).
constexpr uint8_t MipsMaskReg = 14;

/// Byte length of the jump half (`jr $t9`) of a masked-jump pair; the
/// jump half is the last MipsMaskedJumpHalfLen bytes of a match,
/// mirroring core::MaskedJumpHalfLen.
constexpr uint32_t MipsMaskedJumpHalfLen = 4;

/// Exact state counts of the shipped minimized, canonically numbered
/// MIPS tables, pinned the same way core/Policy.h pins x86's;
/// buildMipsPolicyTables() asserts them.
constexpr uint32_t MipsNoControlFlowStates = 9;
constexpr uint32_t MipsDirectJumpStates = 6;
constexpr uint32_t MipsMaskedJumpStates = 10;

/// Compiles the MIPS policy DFAs by raw derivative closure, without
/// minimization (the differential form, like core::buildPolicyTablesRaw).
core::PolicyTables buildMipsPolicyTablesRaw();

/// Compiles the shipped MIPS policy DFAs: derivative closure, Hopcroft
/// minimization, canonical BFS numbering, pinned state counts.
core::PolicyTables buildMipsPolicyTables();

/// The registry entry for (mips, nacl): tables + fused form + canonical
/// ISA-tagged blob + content hash, built and registered on first use.
const core::TableEntry &mipsTableEntry();

/// The stripped one-instruction decoder regex (the union of every MIPS
/// form), interned in \p F — what the audit's decoder-inclusion
/// obligations and the MIPS DecoderDfas are built from.
re::Regex mipsDecoderRegex(re::Factory &F);

/// The Figure-5 check over a MIPS image: same chain (MaskedJump, then
/// NoControlFlow, then DirectJump, shortest-match per table), same
/// finalize pass (every branch target and every bundle boundary must
/// be an instruction start), with MIPS target extraction — beq/bne are
/// pc-relative from the following word, j/jal absolute within the
/// image — and the 16-byte bundle.
core::CheckResult checkMips(const core::PolicyTables &T, const uint8_t *Code,
                            uint32_t Size);

/// checkMips over the registry's MIPS tables.
core::CheckResult checkMips(const uint8_t *Code, uint32_t Size);

} // namespace mips
} // namespace rocksalt

#endif // ROCKSALT_MIPS_MIPSPOLICY_H
