//===- fuzz/Corpus.h - Reproducer corpus I/O -------------------*- C++ -*-===//
///
/// \file
/// The regression corpus under tests/corpus/: raw .bin images the fuzz
/// driver writes when the oracle disagrees (after minimization) and the
/// corpus ctest replays through the full oracle on every run. File names
/// are `<tag>-<hash16>.bin` — the tag carries intent ("disagree",
/// "reject-66e9", ...), the FNV-1a hash de-duplicates and ties a file to
/// its exact bytes.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_FUZZ_CORPUS_H
#define ROCKSALT_FUZZ_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace rocksalt {
namespace fuzz {

/// FNV-1a 64-bit over the image bytes; stable across platforms.
uint64_t imageHash(const std::vector<uint8_t> &Code);

/// Writes \p Code to `<Dir>/<Tag>-<hash16>.bin`, creating Dir if needed.
/// Returns the path written, or "" on I/O failure.
std::string writeReproducer(const std::string &Dir, const std::string &Tag,
                            const std::vector<uint8_t> &Code);

struct CorpusEntry {
  std::string Path;
  std::vector<uint8_t> Code;
};

/// All *.bin files under \p Dir, sorted by path for deterministic replay
/// order. Missing directory yields an empty corpus.
std::vector<CorpusEntry> loadCorpus(const std::string &Dir);

} // namespace fuzz
} // namespace rocksalt

#endif // ROCKSALT_FUZZ_CORPUS_H
