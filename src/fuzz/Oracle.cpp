//===- fuzz/Oracle.cpp - Cross-verifier differential oracle ---------------===//

#include "fuzz/Oracle.h"

#include "core/BaselineChecker.h"

#include <cstdio>

using namespace rocksalt;
using namespace rocksalt::fuzz;

namespace {

const char *verdictName(bool Ok) { return Ok ? "ACCEPT" : "REJECT"; }

std::string boolMismatch(bool Ref, bool Got) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "verdict: reference=%s, path=%s",
                verdictName(Ref), verdictName(Got));
  return Buf;
}

/// First index where two bitmaps differ, or -1.
int64_t firstDiff(const std::vector<uint8_t> &A, const std::vector<uint8_t> &B) {
  size_t N = A.size() < B.size() ? A.size() : B.size();
  for (size_t I = 0; I < N; ++I)
    if (A[I] != B[I])
      return int64_t(I);
  return A.size() == B.size() ? -1 : int64_t(N);
}

/// Full CheckResult comparison (for the paths that produce one).
std::string compareFull(const core::CheckResult &Ref,
                        const core::CheckResult &Got) {
  char Buf[128];
  if (Ref.Ok != Got.Ok)
    return boolMismatch(Ref.Ok, Got.Ok);
  if (Ref.Reason != Got.Reason) {
    std::snprintf(Buf, sizeof(Buf), "reject reason: reference=%s, path=%s",
                  core::rejectReasonName(Ref.Reason),
                  core::rejectReasonName(Got.Reason));
    return Buf;
  }
  struct {
    const char *Name;
    const std::vector<uint8_t> &A, &B;
  } Maps[] = {{"Valid", Ref.Valid, Got.Valid},
              {"Target", Ref.Target, Got.Target},
              {"PairJmp", Ref.PairJmp, Got.PairJmp}};
  for (const auto &Mp : Maps) {
    int64_t D = firstDiff(Mp.A, Mp.B);
    if (D >= 0) {
      std::snprintf(Buf, sizeof(Buf), "%s bitmap diverges at byte %lld",
                    Mp.Name, static_cast<long long>(D));
      return Buf;
    }
  }
  return {};
}

} // namespace

DifferentialOracle::DifferentialOracle(OracleOptions O) : Opts(O) {
  if (Opts.M) {
    M = Opts.M;
  } else {
    OwnMetrics = std::make_unique<svc::Metrics>();
    M = OwnMetrics.get();
  }
  if (Opts.RunParallel) {
    svc::ParallelVerifierOptions Geo[NumGeometries];
    // Fine-grained: every bundle its own shard — maximal seam count.
    Geo[0].MinShardBytes = core::BundleSize;
    Geo[0].MaxShards = 64;
    // Odd uneven shard count: seams land at irregular offsets.
    Geo[1].MinShardBytes = 2 * core::BundleSize;
    Geo[1].MaxShards = 7;
    // Coarse shards: the production-shaped geometry.
    Geo[2].MinShardBytes = 256;

    static const unsigned ThreadCounts[NumPools] = {2, 4};
    for (unsigned P = 0; P < NumPools; ++P) {
      Pools.push_back(std::make_unique<svc::VerifierPool>(
          svc::VerifierPool::Options{ThreadCounts[P]}, M));
      for (unsigned G = 0; G < NumGeometries; ++G)
        PVs.push_back(
            std::make_unique<svc::ParallelVerifier>(*Pools.back(), Geo[G]));
    }
  }
}

OracleReport DifferentialOracle::run(const uint8_t *Code, uint32_t Size) {
  OracleReport Rep;
  Rep.Reference = Ref.check(Code, Size);
  M->OracleRuns.add();
  ++ImageCounter;

  auto Note = [&](const char *PathFmt, std::string Detail) {
    if (!Detail.empty())
      Rep.Disagreements.push_back({PathFmt, std::move(Detail)});
  };

  // The legacy per-byte engine (the paper's C, verbatim) against the
  // fused reference — the full instrumented result, not just the
  // verdict. This is the certification that the fused layout + run
  // skipping changed no decision.
  Note("legacy", compareFull(Rep.Reference,
                             core::checkLegacy(core::policyTables(), Code,
                                               Size)));

  // Bare Figure-5 booleans must match the instrumented verdict, on
  // both engines.
  bool Bare = core::verifyImage(core::policyTables(), Code, Size);
  if (Bare != Rep.Reference.Ok)
    Note("verifyImage", boolMismatch(Rep.Reference.Ok, Bare));
  bool BareFused = core::verifyImage(core::fusedPolicyTables(), Code, Size);
  if (BareFused != Rep.Reference.Ok)
    Note("verifyImage[fused]", boolMismatch(Rep.Reference.Ok, BareFused));

  bool Base = core::baselineVerify(Code, Size);
  if (Base != Rep.Reference.Ok)
    Note("baseline", boolMismatch(Rep.Reference.Ok, Base));

  if (Opts.RunSlow) {
    bool SlowOk = Slow.verify(Code, Size);
    if (SlowOk != Rep.Reference.Ok)
      Note("slow", boolMismatch(Rep.Reference.Ok, SlowOk));
  }

  if (Opts.RunParallel) {
    // Every geometry runs on every image; the pool (thread count) the
    // geometry uses rotates with the image counter.
    for (unsigned G = 0; G < NumGeometries; ++G) {
      unsigned P = unsigned((ImageCounter + G) % NumPools);
      core::CheckResult Par = PVs[P * NumGeometries + G]->check(Code, Size);
      std::string Detail = compareFull(Rep.Reference, Par);
      if (!Detail.empty()) {
        char Path[64];
        std::snprintf(Path, sizeof(Path), "parallel[geo=%u,threads=%u]", G,
                      Pools[P]->threadCount());
        Rep.Disagreements.push_back({Path, std::move(Detail)});
      }
    }
  }

  if (!Rep.agree())
    M->OracleDisagreements.add();
  return Rep;
}
