//===- fuzz/Oracle.h - Cross-verifier differential oracle ------*- C++ -*-===//
///
/// \file
/// The paper's soundness story rests on one function — the Figure-5
/// checker — but this repository has five independent implementations of
/// its decision: the fused-table checker (`core::RockSalt::check`, the
/// production fast path), the legacy three-table per-byte checker
/// (`core::checkLegacy`, the paper's C verbatim), the ncval-style hand
/// decoder (`core::baselineVerify`), the derivative re-derivation path
/// (`core::slowVerify` / `core::SlowContext`), and the chunk-parallel
/// service (`svc::ParallelVerifier`). The oracle runs one image through
/// all of them — the parallel path under several shard geometries and
/// thread counts — and reports every way they diverge:
/// verdict, reject reason, or the Valid/Target/PairJmp bitmaps (for the
/// paths that produce them). Related ISA-model efforts (Goel et al.'s
/// x86isa books) get their confidence from exactly this kind of
/// systematic co-simulation rather than sampled spot checks.
///
/// `RockSalt::check` is the reference; a disagreement means at least one
/// path has a bug, and the fuzz driver shrinks the image to a minimal
/// reproducer (fuzz/Minimizer.h) and pins it in tests/corpus/.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_FUZZ_ORACLE_H
#define ROCKSALT_FUZZ_ORACLE_H

#include "core/SlowVerifier.h"
#include "core/Verifier.h"
#include "svc/Metrics.h"
#include "svc/ParallelVerifier.h"
#include "svc/VerifierPool.h"

#include <memory>
#include <string>
#include <vector>

namespace rocksalt {
namespace fuzz {

struct OracleOptions {
  /// Include the derivative-based slow path (decision-equivalent to
  /// core::slowVerify, amortized through a shared factory).
  bool RunSlow = true;
  /// Include the chunk-parallel path (all geometries × thread counts).
  bool RunParallel = true;
  /// Where OracleRuns/OracleDisagreements are counted; the oracle owns a
  /// private Metrics when null.
  svc::Metrics *M = nullptr;
};

/// One diverging verdict path.
struct Disagreement {
  std::string Path;   ///< "baseline", "slow", "parallel[geo=1,threads=4]"
  std::string Detail; ///< first observed mismatch, human-readable
};

struct OracleReport {
  core::CheckResult Reference; ///< RockSalt::check — the spec
  std::vector<Disagreement> Disagreements;
  bool agree() const { return Disagreements.empty(); }
};

class DifferentialOracle {
public:
  /// Shard geometries the parallel path is exercised under (fine-grained
  /// per-bundle shards, an odd uneven count, and coarse shards).
  static constexpr unsigned NumGeometries = 3;
  /// Worker-pool thread counts the geometries rotate across.
  static constexpr unsigned NumPools = 2;

  explicit DifferentialOracle(OracleOptions O = {});

  /// Runs every verdict path on the image and reports all divergences.
  OracleReport run(const uint8_t *Code, uint32_t Size);
  OracleReport run(const std::vector<uint8_t> &Code) {
    return run(Code.data(), static_cast<uint32_t>(Code.size()));
  }

  /// Predicate form for the minimizer: true iff some path diverges.
  bool disagrees(const std::vector<uint8_t> &Code) {
    return !run(Code).agree();
  }

  svc::Metrics &metrics() { return *M; }

private:
  OracleOptions Opts;
  std::unique_ptr<svc::Metrics> OwnMetrics; ///< when Opts.M is null
  svc::Metrics *M;
  core::RockSalt Ref;
  core::SlowContext Slow;
  std::vector<std::unique_ptr<svc::VerifierPool>> Pools;
  /// PVs[Pool * NumGeometries + Geo]; each geometry runs per image, on a
  /// pool rotated by image counter so both thread counts see every
  /// geometry over a sweep.
  std::vector<std::unique_ptr<svc::ParallelVerifier>> PVs;
  uint64_t ImageCounter = 0;
};

} // namespace fuzz
} // namespace rocksalt

#endif // ROCKSALT_FUZZ_ORACLE_H
