//===- fuzz/StructuredMutator.cpp -----------------------------*- C++ -*-===//

#include "fuzz/StructuredMutator.h"

#include "analysis/CfgLint.h"
#include "core/Verifier.h"
#include "nacl/Mutator.h"

using namespace rocksalt;
using namespace rocksalt::fuzz;

const char *fuzz::grammarMutationName(GrammarMutation K) {
  switch (K) {
  case GrammarMutation::PrefixInject:
    return "prefix-inject";
  case GrammarMutation::ImmWidthFlip:
    return "imm-width-flip";
  case GrammarMutation::SeamSplice:
    return "seam-splice";
  case GrammarMutation::MaskedPairCorrupt:
    return "masked-pair-corrupt";
  case GrammarMutation::RandomSite:
    return "random-site";
  }
  return "?";
}

std::vector<uint32_t> fuzz::chainPositions(const std::vector<uint8_t> &Code) {
  const core::PolicyTables &T = core::policyTables();
  std::vector<uint32_t> Starts;
  uint32_t Pos = 0;
  uint32_t Size = static_cast<uint32_t>(Code.size());
  while (Pos < Size) {
    Starts.push_back(Pos);
    uint32_t Dest = 0;
    if (core::verifyStep(T, Code.data(), &Pos, Size, &Dest) ==
        core::StepKind::Fail)
      break;
  }
  return Starts;
}

namespace {

/// Inserts \p Byte at \p At and drops the last byte, keeping the image
/// size (and bundle count) fixed while shifting the downstream chain.
std::vector<uint8_t> spliceByteAt(const std::vector<uint8_t> &Code,
                                  uint32_t At, uint8_t Byte) {
  std::vector<uint8_t> Out = Code;
  Out.insert(Out.begin() + At, Byte);
  Out.pop_back();
  return Out;
}

std::optional<std::vector<uint8_t>>
prefixInject(const std::vector<uint8_t> &Code, Rng &R) {
  static const uint8_t Prefixes[] = {0x66, 0xF0, 0xF2, 0xF3, 0x26,
                                     0x2E, 0x36, 0x3E, 0x64, 0x65};
  std::vector<uint32_t> Starts = chainPositions(Code);
  if (Starts.empty())
    return std::nullopt;
  uint32_t At = Starts[R.below(Starts.size())];
  return spliceByteAt(Code, At, Prefixes[R.below(std::size(Prefixes))]);
}

/// Opcode pairs whose two elements differ only in immediate width.
uint8_t immWidthSibling(uint8_t B) {
  switch (B) {
  case 0x83: return 0x81; // ALU r/m, imm8sx <-> imm32
  case 0x81: return 0x83;
  case 0x6A: return 0x68; // push imm8 <-> immW
  case 0x68: return 0x6A;
  case 0xEB: return 0xE9; // jmp rel8 <-> rel32
  case 0xE9: return 0xEB;
  case 0xC6: return 0xC7; // mov r/m, imm8 <-> immW
  case 0xC7: return 0xC6;
  case 0xA8: return 0xA9; // test al/eax, imm
  case 0xA9: return 0xA8;
  default: return 0;
  }
}

std::optional<std::vector<uint8_t>>
immWidthFlip(const std::vector<uint8_t> &Code, Rng &R) {
  std::vector<uint32_t> Sites;
  for (uint32_t P : chainPositions(Code))
    if (P < Code.size() && immWidthSibling(Code[P]))
      Sites.push_back(P);
  if (Sites.empty())
    return std::nullopt;
  uint32_t At = Sites[R.below(Sites.size())];
  std::vector<uint8_t> Out = Code;
  Out[At] = immWidthSibling(Out[At]);
  return Out;
}

std::optional<std::vector<uint8_t>>
seamSplice(const std::vector<uint8_t> &Code, Rng &R) {
  uint32_t Size = static_cast<uint32_t>(Code.size());
  uint32_t Bundles = Size / core::BundleSize;
  if (Bundles < 2)
    return std::nullopt;
  // A bundle boundary and an instruction overwritten so it crosses it.
  uint32_t Seam = core::BundleSize * uint32_t(1 + R.below(Bundles - 1));
  struct Gallery {
    uint8_t Bytes[6];
    uint32_t Len;
  };
  static const Gallery Instrs[] = {
      {{0xB8, 0x11, 0x22, 0x33, 0x44, 0}, 5},       // mov eax, imm32
      {{0x83, 0xE0, 0xE0, 0xFF, 0xE0, 0}, 5},       // nacljmp eax
      {{0xE9, 0x00, 0x00, 0x00, 0x00, 0}, 5},       // jmp rel32 +0
      {{0x0F, 0x84, 0x00, 0x00, 0x00, 0x00}, 6},    // je rel32 +0
      {{0x81, 0xC3, 0x01, 0x00, 0x00, 0x00}, 6},    // add ebx, imm32
      {{0x66, 0xB8, 0x22, 0x11, 0x90, 0}, 4},       // mov ax, imm16 (0x66)
  };
  const Gallery &G = Instrs[R.below(std::size(Instrs))];
  // Start 1..Len-1 bytes before the seam so the instruction straddles it.
  uint32_t Back = uint32_t(1 + R.below(G.Len - 1));
  if (Back > Seam || Seam - Back + G.Len > Size)
    return std::nullopt;
  std::vector<uint8_t> Out = Code;
  for (uint32_t I = 0; I < G.Len; ++I)
    Out[Seam - Back + I] = G.Bytes[I];
  return Out;
}

std::optional<std::vector<uint8_t>>
maskedPairCorrupt(const std::vector<uint8_t> &Code, Rng &R) {
  // All nacljmp pair positions (mask half at I).
  std::vector<uint32_t> Pairs;
  for (uint32_t I = 0; I + 4 < Code.size(); ++I) {
    if (Code[I] != 0x83 || (Code[I + 1] & 0xF8) != 0xE0 ||
        Code[I + 2] != core::SafeMaskByte || Code[I + 3] != 0xFF)
      continue;
    uint8_t M2 = Code[I + 4] & 0xF8;
    if (M2 == 0xE0 || M2 == 0xD0)
      Pairs.push_back(I);
  }
  if (Pairs.empty())
    return std::nullopt;
  uint32_t At = Pairs[R.below(Pairs.size())];
  std::vector<uint8_t> Out = Code;
  switch (R.below(5)) {
  case 0: // register mismatch between mask and jump halves
    Out[At + 4] = (Out[At + 4] & 0xF8) | uint8_t((Out[At + 4] + 1) & 7);
    break;
  case 1: // wrong mask immediate
    Out[At + 2] = static_cast<uint8_t>(R.next());
    break;
  case 2: // AND digit 4 -> 5 (and -> sub encoding-wise: not a mask)
    Out[At + 1] ^= 0x08;
    break;
  case 3: // jmp <-> call flavor (stays a legal pair: exercises agreement)
    Out[At + 4] ^= 0x30;
    break;
  case 4: // register form -> memory form (FF /4 mod=01: jmp [r+disp8])
    Out[At + 4] ^= 0x80;
    break;
  }
  return Out;
}

} // namespace

std::optional<std::vector<uint8_t>>
fuzz::applyGrammarMutation(const std::vector<uint8_t> &Code,
                           GrammarMutation Kind, Rng &R) {
  if (Code.empty())
    return std::nullopt;
  switch (Kind) {
  case GrammarMutation::PrefixInject:
    return prefixInject(Code, R);
  case GrammarMutation::ImmWidthFlip:
    return immWidthFlip(Code, R);
  case GrammarMutation::SeamSplice:
    return seamSplice(Code, R);
  case GrammarMutation::MaskedPairCorrupt:
    return maskedPairCorrupt(Code, R);
  case GrammarMutation::RandomSite:
    return nacl::mutateRandom(Code, R);
  }
  return std::nullopt;
}

const char *fuzz::patchKindName(PatchKind K) {
  switch (K) {
  case PatchKind::BundleLocalEdit:
    return "bundle-local-edit";
  case PatchKind::SeamStraddle:
    return "seam-straddle";
  case PatchKind::MaskedPairSplit:
    return "masked-pair-split";
  case PatchKind::RandomBytes:
    return "random-bytes";
  case PatchKind::DeadPairRevive:
    return "dead-pair-revive";
  case PatchKind::CallSeamMisalign:
    return "call-seam-misalign";
  case PatchKind::BranchIntoPair:
    return "branch-into-pair";
  }
  return "?";
}

namespace {

/// Legal single instructions a JIT would plausibly emit into a patched
/// slot, so patch sequences flip between accept and reject instead of
/// rotting into permanent rejection.
struct PatchGallery {
  uint8_t Bytes[6];
  uint32_t Len;
};
const PatchGallery PatchInstrs[] = {
    {{0x90, 0x90, 0x90, 0x90, 0x90, 0x90}, 6},  // nop sled
    {{0xB8, 0x44, 0x33, 0x22, 0x11, 0x90}, 6},  // mov eax, imm32; nop
    {{0x83, 0xE0, 0xE0, 0xFF, 0xE0, 0x90}, 6},  // nacljmp eax; nop
    {{0xE9, 0x00, 0x00, 0x00, 0x00, 0x90}, 6},  // jmp rel32 +0; nop
    {{0x81, 0xC3, 0x01, 0x00, 0x00, 0x00}, 6},  // add ebx, imm32
};

std::optional<fuzz::PatchOp> bundleLocalPatch(const std::vector<uint8_t> &Code,
                                              Rng &R) {
  uint32_t Size = uint32_t(Code.size());
  if (Size == 0)
    return std::nullopt;
  uint32_t Bundles = (Size + core::BundleSize - 1) / core::BundleSize;
  uint32_t B = uint32_t(R.below(Bundles));
  uint32_t Base = B * core::BundleSize;
  uint32_t Limit = Base + core::BundleSize < Size ? core::BundleSize
                                                  : Size - Base;
  uint32_t Off = uint32_t(R.below(Limit));
  uint32_t MaxLen = Limit - Off;
  uint32_t Len = uint32_t(1 + R.below(MaxLen < 8 ? MaxLen : 8));
  fuzz::PatchOp P;
  P.Kind = fuzz::PatchKind::BundleLocalEdit;
  P.Offset = Base + Off;
  P.Bytes.resize(Len);
  if (R.below(2)) { // legal bytes half the time: accept/reject both happen
    const PatchGallery &G = PatchInstrs[R.below(std::size(PatchInstrs))];
    for (uint32_t I = 0; I < Len; ++I)
      P.Bytes[I] = G.Bytes[I % G.Len];
  } else {
    for (uint32_t I = 0; I < Len; ++I)
      P.Bytes[I] = uint8_t(R.next());
  }
  return P;
}

std::optional<fuzz::PatchOp> seamStraddlePatch(const std::vector<uint8_t> &Code,
                                               Rng &R) {
  uint32_t Size = uint32_t(Code.size());
  uint32_t Bundles = Size / core::BundleSize;
  if (Bundles < 2)
    return std::nullopt;
  uint32_t Seam = core::BundleSize * uint32_t(1 + R.below(Bundles - 1));
  const PatchGallery &G = PatchInstrs[R.below(std::size(PatchInstrs))];
  uint32_t Back = uint32_t(1 + R.below(G.Len - 1));
  if (Back > Seam || Seam - Back + G.Len > Size)
    return std::nullopt;
  fuzz::PatchOp P;
  P.Kind = fuzz::PatchKind::SeamStraddle;
  P.Offset = Seam - Back;
  P.Bytes.assign(G.Bytes, G.Bytes + G.Len);
  return P;
}

std::optional<fuzz::PatchOp>
maskedPairSplitPatch(const std::vector<uint8_t> &Code, Rng &R) {
  std::vector<uint32_t> Pairs;
  for (uint32_t I = 0; I + 4 < Code.size(); ++I) {
    if (Code[I] != 0x83 || (Code[I + 1] & 0xF8) != 0xE0 ||
        Code[I + 2] != core::SafeMaskByte || Code[I + 3] != 0xFF)
      continue;
    uint8_t M2 = Code[I + 4] & 0xF8;
    if (M2 == 0xE0 || M2 == 0xD0)
      Pairs.push_back(I);
  }
  if (Pairs.empty())
    return std::nullopt;
  uint32_t At = Pairs[R.below(Pairs.size())];
  fuzz::PatchOp P;
  P.Kind = fuzz::PatchKind::MaskedPairSplit;
  if (R.below(2)) {
    // Overwrite only the mask half: the jump half survives unmasked.
    P.Offset = At;
    P.Bytes = {0x90, 0x90, 0x90};
  } else {
    // Overwrite only the jump half: the mask now guards a nop.
    P.Offset = At + 3;
    P.Bytes = {0x90, 0x90};
  }
  return P;
}

/// Encodes a 2-byte jmp rel8 at \p At reaching \p Target, or nullopt
/// when the displacement does not fit.
std::optional<fuzz::PatchOp> jmpRel8Patch(uint32_t At, uint32_t Target,
                                          fuzz::PatchKind Kind) {
  int64_t Rel = int64_t(Target) - (int64_t(At) + 2);
  if (Rel < -128 || Rel > 127)
    return std::nullopt;
  fuzz::PatchOp P;
  P.Kind = Kind;
  P.Offset = At;
  P.Bytes = {0xEB, uint8_t(int8_t(Rel))};
  return P;
}

/// Lint-directed: point a short jmp from a direct-reachable node at a
/// masked pair the lint flagged dead, so the DeadMaskedPair warning
/// flips off (and the pair's bundle stops being an unreachable note).
std::optional<fuzz::PatchOp>
deadPairRevivePatch(const std::vector<uint8_t> &Code, Rng &R) {
  analysis::CfgLintResult L =
      analysis::lintImage(core::policyTables(), Code);
  std::vector<uint32_t> Dead;
  for (const analysis::LintDiag &D : L.Diags)
    if (D.Kind == analysis::LintKind::DeadMaskedPair)
      Dead.push_back(D.Offset);
  if (Dead.empty())
    return std::nullopt;
  uint32_t Pair = Dead[R.below(Dead.size())];
  std::vector<uint32_t> Sites;
  for (size_t I = 0; I < L.Nodes.size(); ++I) {
    const analysis::CfgNode &N = L.Nodes[I];
    if (!L.Reachable[I] || N.End - N.Begin < 2)
      continue;
    int64_t Rel = int64_t(Pair) - (int64_t(N.Begin) + 2);
    if (Rel >= -128 && Rel <= 127)
      Sites.push_back(N.Begin);
  }
  if (Sites.empty())
    return std::nullopt;
  return jmpRel8Patch(Sites[R.below(Sites.size())], Pair,
                      fuzz::PatchKind::DeadPairRevive);
}

/// Lint-directed: overwrite a 5-byte node whose end is off the bundle
/// seam with a direct call to a bundle start, so CallRetNotSeam flips
/// on while the branch target itself stays policy-legal.
std::optional<fuzz::PatchOp>
callSeamMisalignPatch(const std::vector<uint8_t> &Code, Rng &R) {
  uint32_t Size = uint32_t(Code.size());
  if (Size < core::BundleSize)
    return std::nullopt;
  analysis::CfgLintResult L =
      analysis::lintImage(core::policyTables(), Code);
  std::vector<uint32_t> Sites;
  for (const analysis::CfgNode &N : L.Nodes)
    if (N.End - N.Begin >= 5 && N.Begin + 5 <= Size &&
        (N.Begin + 5) % core::BundleSize != 0)
      Sites.push_back(N.Begin);
  if (Sites.empty())
    return std::nullopt;
  uint32_t At = Sites[R.below(Sites.size())];
  uint32_t Target = core::BundleSize * uint32_t(R.below(Size / core::BundleSize));
  int64_t Rel = int64_t(Target) - (int64_t(At) + 5);
  fuzz::PatchOp P;
  P.Kind = fuzz::PatchKind::CallSeamMisalign;
  P.Offset = At;
  P.Bytes = {0xE8, uint8_t(Rel), uint8_t(Rel >> 8), uint8_t(Rel >> 16),
             uint8_t(Rel >> 24)};
  return P;
}

/// Lint-directed: short-jmp into a masked pair's jump half — the
/// classic unguarded-jump attack BranchIntoMaskedPair exists to catch.
std::optional<fuzz::PatchOp>
branchIntoPairPatch(const std::vector<uint8_t> &Code, Rng &R) {
  analysis::CfgLintResult L =
      analysis::lintImage(core::policyTables(), Code);
  std::vector<uint32_t> Pairs;
  for (const analysis::CfgNode &N : L.Nodes)
    if (N.IndirectOut && N.End - N.Begin == 5)
      Pairs.push_back(N.Begin);
  if (Pairs.empty())
    return std::nullopt;
  uint32_t Pair = Pairs[R.below(Pairs.size())];
  uint32_t Target = Pair + 3; // the FF /4-or-/2 jump half's first byte
  std::vector<uint32_t> Sites;
  for (const analysis::CfgNode &N : L.Nodes) {
    if (N.End - N.Begin < 2 || N.Begin == Pair)
      continue;
    int64_t Rel = int64_t(Target) - (int64_t(N.Begin) + 2);
    if (Rel >= -128 && Rel <= 127)
      Sites.push_back(N.Begin);
  }
  if (Sites.empty())
    return std::nullopt;
  return jmpRel8Patch(Sites[R.below(Sites.size())], Target,
                      fuzz::PatchKind::BranchIntoPair);
}

fuzz::PatchOp randomBytesPatch(const std::vector<uint8_t> &Code, Rng &R) {
  uint32_t Size = uint32_t(Code.size());
  uint32_t Off = uint32_t(R.below(Size));
  uint32_t MaxLen = Size - Off;
  uint32_t Len = uint32_t(1 + R.below(MaxLen < 16 ? MaxLen : 16));
  fuzz::PatchOp P;
  P.Kind = fuzz::PatchKind::RandomBytes;
  P.Offset = Off;
  P.Bytes.resize(Len);
  for (uint32_t I = 0; I < Len; ++I)
    P.Bytes[I] = uint8_t(R.next());
  return P;
}

} // namespace

std::optional<fuzz::PatchOp>
fuzz::applyPatchKind(const std::vector<uint8_t> &Code, PatchKind Kind, Rng &R) {
  if (Code.empty())
    return std::nullopt;
  switch (Kind) {
  case PatchKind::BundleLocalEdit:
    return bundleLocalPatch(Code, R);
  case PatchKind::SeamStraddle:
    return seamStraddlePatch(Code, R);
  case PatchKind::MaskedPairSplit:
    return maskedPairSplitPatch(Code, R);
  case PatchKind::RandomBytes:
    return randomBytesPatch(Code, R);
  case PatchKind::DeadPairRevive:
    return deadPairRevivePatch(Code, R);
  case PatchKind::CallSeamMisalign:
    return callSeamMisalignPatch(Code, R);
  case PatchKind::BranchIntoPair:
    return branchIntoPairPatch(Code, R);
  }
  return std::nullopt;
}

fuzz::PatchOp fuzz::nextStructuredPatch(const std::vector<uint8_t> &Code,
                                        Rng &R) {
  static const PatchKind Kinds[] = {
      PatchKind::BundleLocalEdit, PatchKind::BundleLocalEdit,
      PatchKind::SeamStraddle,    PatchKind::SeamStraddle,
      PatchKind::MaskedPairSplit, PatchKind::MaskedPairSplit,
      PatchKind::RandomBytes,     PatchKind::DeadPairRevive,
      PatchKind::CallSeamMisalign, PatchKind::BranchIntoPair};
  PatchKind Kind = Kinds[R.below(std::size(Kinds))];
  if (auto P = applyPatchKind(Code, Kind, R))
    return *P;
  return randomBytesPatch(Code, R);
}

std::vector<uint8_t> fuzz::mutateStructured(const std::vector<uint8_t> &Code,
                                            Rng &R) {
  // Grammar-directed kinds dominate; the blind fallback keeps the blind
  // case covered and absorbs inapplicable draws.
  static const GrammarMutation Kinds[] = {
      GrammarMutation::PrefixInject,      GrammarMutation::PrefixInject,
      GrammarMutation::ImmWidthFlip,      GrammarMutation::ImmWidthFlip,
      GrammarMutation::SeamSplice,        GrammarMutation::SeamSplice,
      GrammarMutation::MaskedPairCorrupt, GrammarMutation::MaskedPairCorrupt,
      GrammarMutation::RandomSite};
  GrammarMutation Kind = Kinds[R.below(std::size(Kinds))];
  if (auto Out = applyGrammarMutation(Code, Kind, R))
    return *Out;
  return nacl::mutateRandom(Code, R);
}
