//===- fuzz/Minimizer.h - Delta-debugging image minimizer ------*- C++ -*-===//
///
/// \file
/// Shrinks an image while preserving a predicate — "the oracle still
/// disagrees" for fuzz reproducers, "still rejected for the same reason"
/// for `validator_cli --explain`. Classic greedy delta debugging over
/// byte ranges: chunk removal at halving granularities (so whole bundles
/// go first and the result re-aligns), then per-byte removal, then a
/// canonicalization pass that rewrites surviving bytes to NOP so the
/// reproducer reads as "the minimal interesting bytes on a nop sled".
///
/// Every predicate evaluation counts as one shrink step in
/// svc::Metrics::ShrinkSteps when a Metrics sink is supplied.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_FUZZ_MINIMIZER_H
#define ROCKSALT_FUZZ_MINIMIZER_H

#include "svc/Metrics.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace rocksalt {
namespace fuzz {

using ImagePredicate = std::function<bool(const std::vector<uint8_t> &)>;

struct MinimizeOptions {
  /// Hard cap on predicate evaluations (the predicate may run the full
  /// oracle, so each evaluation has real cost).
  uint64_t MaxEvals = 20000;
  /// Rewrite surviving non-essential bytes to Filler after shrinking.
  bool CanonicalizeBytes = true;
  uint8_t Filler = 0x90; // NOP
  /// ShrinkSteps sink (optional).
  svc::Metrics *M = nullptr;
};

struct MinimizeResult {
  std::vector<uint8_t> Image; ///< smallest image still satisfying Pred
  uint64_t Evals = 0;         ///< predicate evaluations performed
  uint64_t BytesRemoved = 0;  ///< seed size minus result size
};

/// Greedy ddmin. \p Pred must hold on \p Seed; the result is 1-minimal
/// with respect to the removal granularities tried (or whatever was
/// reached when MaxEvals ran out).
MinimizeResult minimizeImage(std::vector<uint8_t> Seed,
                             const ImagePredicate &Pred,
                             const MinimizeOptions &O = {});

} // namespace fuzz
} // namespace rocksalt

#endif // ROCKSALT_FUZZ_MINIMIZER_H
