//===- fuzz/Minimizer.cpp - Delta-debugging image minimizer ---------------===//

#include "fuzz/Minimizer.h"

using namespace rocksalt;
using namespace rocksalt::fuzz;

namespace {

/// Evaluation wrapper: counts into Metrics and enforces the eval budget.
struct Evaluator {
  const ImagePredicate &Pred;
  const MinimizeOptions &O;
  uint64_t Evals = 0;

  bool exhausted() const { return Evals >= O.MaxEvals; }

  bool holds(const std::vector<uint8_t> &Img) {
    ++Evals;
    if (O.M)
      O.M->ShrinkSteps.add();
    return Pred(Img);
  }
};

/// One greedy removal sweep at a fixed chunk size. Walks front to back
/// re-testing after each successful removal; restarts the walk position
/// rather than the whole sweep so a pass is O(n/Chunk) evaluations.
bool removalPass(std::vector<uint8_t> &Img, size_t Chunk, Evaluator &E) {
  bool Shrank = false;
  size_t I = 0;
  while (I < Img.size() && !E.exhausted()) {
    size_t Len = Chunk < Img.size() - I ? Chunk : Img.size() - I;
    std::vector<uint8_t> Cand;
    Cand.reserve(Img.size() - Len);
    Cand.insert(Cand.end(), Img.begin(), Img.begin() + I);
    Cand.insert(Cand.end(), Img.begin() + I + Len, Img.end());
    if (!Cand.empty() && E.holds(Cand)) {
      Img = std::move(Cand);
      Shrank = true;
      // Keep I: the bytes now at I are new, try removing them too.
    } else {
      I += Len;
    }
  }
  return Shrank;
}

/// Rewrites each surviving byte to Filler when the predicate keeps
/// holding, so the reproducer reads as interesting-bytes-on-a-nop-sled.
void canonicalizePass(std::vector<uint8_t> &Img, Evaluator &E) {
  for (size_t I = 0; I < Img.size() && !E.exhausted(); ++I) {
    if (Img[I] == E.O.Filler)
      continue;
    uint8_t Old = Img[I];
    Img[I] = E.O.Filler;
    if (!E.holds(Img))
      Img[I] = Old;
  }
}

} // namespace

MinimizeResult fuzz::minimizeImage(std::vector<uint8_t> Seed,
                                   const ImagePredicate &Pred,
                                   const MinimizeOptions &O) {
  MinimizeResult Res;
  Evaluator E{Pred, O};
  size_t SeedSize = Seed.size();

  // Halving granularities: big chunks first (whole bundles vanish in one
  // test and keep the remainder aligned), down to single bytes. Repeat
  // the whole ladder while any pass still shrinks — removing a chunk can
  // unlock earlier granularities again.
  bool Progress = true;
  while (Progress && !E.exhausted()) {
    Progress = false;
    for (size_t Chunk = Seed.size() / 2; Chunk >= 1; Chunk /= 2) {
      if (removalPass(Seed, Chunk, E))
        Progress = true;
      if (E.exhausted() || Chunk == 1)
        break;
    }
  }

  if (O.CanonicalizeBytes)
    canonicalizePass(Seed, E);

  Res.Image = std::move(Seed);
  Res.Evals = E.Evals;
  Res.BytesRemoved = SeedSize - Res.Image.size();
  return Res;
}
