//===- fuzz/StructuredMutator.h - Grammar-directed mutations ---*- C++ -*-===//
///
/// \file
/// Mutations that know the shape of the policy grammars, extending the
/// blind corruptions of nacl/Mutator. Where mutateRandom flips an
/// arbitrary byte, these aim at the constructs the four verifiers have
/// to agree about byte-for-byte:
///
///  * PrefixInject — splice a prefix byte (0x66/0xF0/0xF2/0xF3/segment)
///    in at an instruction start, shifting everything after it by one so
///    the whole downstream chain re-aligns differently;
///  * ImmWidthFlip — rewrite an opcode to its other-immediate-width
///    sibling (83<->81, 6A<->68, EB<->E9, C6<->C7, A8<->A9) while
///    leaving the operand bytes alone, so the decoded length changes out
///    from under the old encoding;
///  * SeamSplice — overwrite bytes so a multi-byte instruction (or a
///    masked-jump pair) straddles a 32-byte bundle boundary, the exact
///    inputs where the chunk-parallel verifier's seam logic must match
///    the sequential chain;
///  * MaskedPairCorrupt — find a nacljmp pair and break exactly one of
///    its invariants (register agreement, the mask immediate, the AND
///    digit, jmp/call flavor, register- vs memory-form).
///
/// All mutations are deterministic per Rng state, so a failing image is
/// reproducible from (base seed, iteration) alone.
///
//===----------------------------------------------------------------------===//

#ifndef ROCKSALT_FUZZ_STRUCTUREDMUTATOR_H
#define ROCKSALT_FUZZ_STRUCTUREDMUTATOR_H

#include "support/Oracle.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace rocksalt {
namespace fuzz {

enum class GrammarMutation : uint8_t {
  PrefixInject,
  ImmWidthFlip,
  SeamSplice,
  MaskedPairCorrupt,
  RandomSite, ///< nacl::mutateRandom fallback, for coverage of the blind case
};

const char *grammarMutationName(GrammarMutation K);

/// Applies \p Kind at a position chosen through \p R. Returns nullopt
/// when the mutation does not apply (no masked pair to corrupt, image
/// too small to straddle a seam, ...).
std::optional<std::vector<uint8_t>>
applyGrammarMutation(const std::vector<uint8_t> &Code, GrammarMutation Kind,
                     Rng &R);

/// Draws a mutation kind and applies it, falling back to random
/// single-site corruption when the drawn kind does not apply. Never
/// fails on a non-empty image.
std::vector<uint8_t> mutateStructured(const std::vector<uint8_t> &Code,
                                      Rng &R);

/// The positions the Figure-5 chain visits on \p Code, up to the first
/// failing position (inclusive) — the mutation sites grammar-aware
/// mutations aim at. Exposed for tests.
std::vector<uint32_t> chainPositions(const std::vector<uint8_t> &Code);

/// In-place patches for the incremental (JIT) workload: unlike the
/// mutations above, these never change the image size — they model a
/// code cache overwriting previously verified bytes. Kinds target the
/// places the incremental verifier's chunk/seam logic must get right:
enum class PatchKind : uint8_t {
  BundleLocalEdit, ///< rewrite bytes confined to one 32-byte bundle
  SeamStraddle,    ///< overwrite an instruction across a bundle seam
  MaskedPairSplit, ///< break exactly one half of a nacljmp pair
  RandomBytes,     ///< blind overwrite, for coverage of the blind case
  // Lint-directed kinds: each aims to flip a specific diagnostic of
  // analysis/CfgLint, so the lint differential exercises the engines on
  // images whose diagnostic sets actually change between steps instead
  // of only on verdict flips.
  DeadPairRevive,   ///< jmp from live code to a dead masked pair
                    ///< (flips the DeadMaskedPair warning off)
  CallSeamMisalign, ///< plant a direct call whose return point misses
                    ///< the bundle seam (flips CallRetNotSeam on)
  BranchIntoPair,   ///< retarget a direct branch into a masked pair's
                    ///< jump half (flips BranchIntoMaskedPair on)
};

const char *patchKindName(PatchKind K);

/// One overwrite: replace [Offset, Offset+Bytes.size()) of the image.
struct PatchOp {
  uint32_t Offset = 0;
  std::vector<uint8_t> Bytes;
  PatchKind Kind = PatchKind::RandomBytes;
};

/// Draws a patch of \p Kind against \p Code through \p R. Returns
/// nullopt when the kind does not apply (no masked pair to split, image
/// too small to straddle a seam, ...).
std::optional<PatchOp> applyPatchKind(const std::vector<uint8_t> &Code,
                                      PatchKind Kind, Rng &R);

/// Draws a patch kind and applies it, falling back to a random-byte
/// overwrite when the drawn kind does not apply. Never fails on a
/// non-empty image; deterministic per Rng state.
PatchOp nextStructuredPatch(const std::vector<uint8_t> &Code, Rng &R);

} // namespace fuzz
} // namespace rocksalt

#endif // ROCKSALT_FUZZ_STRUCTUREDMUTATOR_H
