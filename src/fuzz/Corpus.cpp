//===- fuzz/Corpus.cpp - Reproducer corpus I/O ----------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace rocksalt;
using namespace rocksalt::fuzz;

uint64_t fuzz::imageHash(const std::vector<uint8_t> &Code) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint8_t B : Code) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string fuzz::writeReproducer(const std::string &Dir,
                                  const std::string &Tag,
                                  const std::vector<uint8_t> &Code) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  char Hash[24];
  std::snprintf(Hash, sizeof(Hash), "%016llx",
                static_cast<unsigned long long>(imageHash(Code)));
  std::string Path = Dir + "/" + Tag + "-" + Hash + ".bin";
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return {};
  Out.write(reinterpret_cast<const char *>(Code.data()),
            static_cast<std::streamsize>(Code.size()));
  return Out ? Path : std::string();
}

std::vector<CorpusEntry> fuzz::loadCorpus(const std::string &Dir) {
  std::vector<CorpusEntry> Entries;
  std::error_code EC;
  std::filesystem::directory_iterator It(Dir, EC), End;
  if (EC)
    return Entries;
  for (; It != End; It.increment(EC)) {
    if (EC)
      break;
    if (!It->is_regular_file() || It->path().extension() != ".bin")
      continue;
    std::ifstream In(It->path(), std::ios::binary);
    if (!In)
      continue;
    CorpusEntry E;
    E.Path = It->path().string();
    E.Code.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
    Entries.push_back(std::move(E));
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const CorpusEntry &A, const CorpusEntry &B) {
              return A.Path < B.Path;
            });
  return Entries;
}
