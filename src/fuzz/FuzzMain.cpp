//===- fuzz/FuzzMain.cpp - Differential fuzzing driver --------------------===//
///
/// \file
/// `fuzz_differential`: generate compliant workloads, mutate them with
/// the grammar-directed mutator, and push every image through the
/// differential oracle (DFA checker, baseline decoder, derivative slow
/// path, and the parallel verifier under all shard geometries). Any
/// disagreement is minimized to a reproducer and written into the
/// regression corpus. The run is fully determined by --base-seed: a
/// failure report names the seed and iteration, and the printed repro
/// command replays exactly that image.
///
/// --patches switches to the incremental-vs-full verifier differential
/// (long-lived images mutated in place); --lint to the three-engine
/// lint differential, holding the sequential, shard-derived, and
/// incrementally maintained lint of every mutated image to
/// byte-identical rendered reports; --fused to the fused-vs-legacy
/// engine lockstep that certifies the cache-resident fused transition
/// array (and its run-skipping fast path) bit-identical to the paper's
/// three-table per-byte checker on every mutated image, sequentially
/// and through the shard scan/merge under rotating shard counts.
///
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "core/Shard.h"
#include "core/Verifier.h"
#include "fuzz/Corpus.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/StructuredMutator.h"
#include "incr/IncrementalVerifier.h"
#include "nacl/WorkloadGen.h"
#include "svc/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace rocksalt;

namespace {

struct CliOptions {
  uint64_t Seeds = 8;      ///< number of base workloads
  uint64_t Iters = 100;    ///< mutations per base workload
  uint32_t Size = 512;     ///< workload target bytes
  uint64_t BaseSeed = 1;   ///< first workload seed; seed i = BaseSeed + i
  bool Minimize = false;   ///< shrink disagreeing images
  std::string CorpusDir;   ///< where reproducers land ("" = don't write)
  bool Stats = false;      ///< dump the Prometheus metrics text at exit
  bool RunSlow = true;
  bool RunParallel = true;
  bool Patches = false;    ///< incremental-vs-full patch differential mode
  bool LintDiff = false;   ///< three-engine lint differential mode
  bool FusedDiff = false;  ///< fused-vs-legacy engine lockstep mode
  uint64_t Images = 500;   ///< --patches/--lint: number of base images
  uint64_t Steps = 20;     ///< --patches/--lint: patch steps per image
};

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--smoke] [--seeds N] [--iters N] [--size N]\n"
      "          [--base-seed N] [--minimize] [--corpus DIR] [--stats]\n"
      "          [--no-slow] [--no-parallel]\n"
      "          [--patches | --lint | --fused] [--images N] [--steps N]\n"
      "  --smoke   preset: --seeds 25 --iters 400 --size 384 --minimize\n"
      "            (10025 images through every verdict path)\n"
      "  --patches incremental-vs-full differential mode: open --images\n"
      "            base images, apply --steps structured patches each,\n"
      "            cross-check every incremental verdict (and its\n"
      "            Valid/Target/PairJmp bitmaps) against a full re-check\n"
      "  --lint    three-engine lint differential: sequential lintImage,\n"
      "            the shard-derived lint (rotating shard counts), and\n"
      "            the incremental linter must render byte-identical\n"
      "            reports for every mutated image\n"
      "  --fused   fused-vs-legacy lockstep: the fused cache-resident\n"
      "            engine (RockSalt::check, bare verifyImage, and the\n"
      "            fused shard scan+merge under rotating shard counts)\n"
      "            must reproduce the legacy three-table checker's full\n"
      "            instrumented result on every mutated image\n",
      Argv0);
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextVal = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 0);
      return true;
    };
    uint64_t V = 0;
    if (A == "--smoke") {
      O.Seeds = 25;
      O.Iters = 400;
      O.Size = 384;
      O.Minimize = true;
    } else if (A == "--seeds" && NextVal(V)) {
      O.Seeds = V;
    } else if (A == "--iters" && NextVal(V)) {
      O.Iters = V;
    } else if (A == "--size" && NextVal(V)) {
      O.Size = static_cast<uint32_t>(V);
    } else if (A == "--base-seed" && NextVal(V)) {
      O.BaseSeed = V;
    } else if (A == "--minimize") {
      O.Minimize = true;
    } else if (A == "--corpus" && I + 1 < Argc) {
      O.CorpusDir = Argv[++I];
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--no-slow") {
      O.RunSlow = false;
    } else if (A == "--no-parallel") {
      O.RunParallel = false;
    } else if (A == "--patches") {
      O.Patches = true;
    } else if (A == "--lint") {
      O.LintDiff = true;
    } else if (A == "--fused") {
      O.FusedDiff = true;
    } else if (A == "--images" && NextVal(V)) {
      O.Images = V;
    } else if (A == "--steps" && NextVal(V)) {
      O.Steps = V;
    } else {
      usage(Argv[0]);
      return false;
    }
  }
  return true;
}

/// Mixes (seed, iteration) into the per-iteration mutation Rng seed, so
/// any image in the run is reachable from the command line alone.
uint64_t mutationSeed(uint64_t WorkloadSeed, uint64_t Iter) {
  uint64_t H = WorkloadSeed * 0x9E3779B97F4A7C15ull + Iter;
  H ^= H >> 32;
  return H ? H : 1;
}

void hexDump(const std::vector<uint8_t> &Code) {
  for (size_t I = 0; I < Code.size(); ++I)
    std::printf("%02x%s", Code[I],
                (I + 1) % 16 == 0 || I + 1 == Code.size() ? "\n" : " ");
}

void reportDisagreement(const fuzz::OracleReport &Rep, uint64_t WorkloadSeed,
                        uint64_t Iter) {
  std::printf("DISAGREEMENT at seed=%llu iter=%llu (reference=%s)\n",
              static_cast<unsigned long long>(WorkloadSeed),
              static_cast<unsigned long long>(Iter),
              Rep.Reference.Ok ? "ACCEPT" : "REJECT");
  for (const auto &D : Rep.Disagreements)
    std::printf("  path %-28s %s\n", D.Path.c_str(), D.Detail.c_str());
}

/// Compares an engine's instrumented result against the reference
/// result for the same bytes: verdict, reject reason, and the three
/// instrumented bitmaps must all match bit-for-bit. Returns a
/// description of the first divergence, or "" on agreement. Shared by
/// the --patches mode (incremental vs full) and the --fused mode
/// (fused vs legacy).
std::string comparePatchVerdicts(const core::CheckResult &Got,
                                 const core::CheckResult &Ref) {
  if (Got.Ok != Ref.Ok)
    return "verdict differs (got " +
           std::string(Got.Ok ? "ACCEPT" : "REJECT") + ", reference " +
           std::string(Ref.Ok ? "ACCEPT" : "REJECT") + ")";
  if (Got.Reason != Ref.Reason)
    return std::string("reject reason differs (got ") +
           core::rejectReasonName(Got.Reason) + ", reference " +
           core::rejectReasonName(Ref.Reason) + ")";
  if (Got.Valid != Ref.Valid)
    return "Valid bitmap differs";
  if (Got.Target != Ref.Target)
    return "Target bitmap differs";
  if (Got.PairJmp != Ref.PairJmp)
    return "PairJmp bitmap differs";
  return "";
}

/// The incremental-vs-full differential: a long-lived image mutated in
/// place, re-verified incrementally after every patch and cross-checked
/// against a full sequential check of the same bytes. Chunk geometry
/// rotates per image (including the minimum, one bundle per chunk, the
/// seam-heaviest case) and a quarter of the images are tail-truncated
/// to a non-bundle-multiple size so final-partial-chunk handling is in
/// the loop.
int runPatchDifferential(const CliOptions &O, svc::Metrics &M) {
  const core::PolicyTables &T = core::policyTables();
  core::RockSalt Full(T);
  static const uint32_t ChunkRotation[] = {512, 32, 256, 1024};

  uint64_t Disagreements = 0;
  uint64_t StepsRun = 0;

  for (uint64_t I = 0; I < O.Images; ++I) {
    uint64_t Seed = O.BaseSeed + I;
    nacl::WorkloadOptions WO;
    WO.TargetBytes = O.Size + uint32_t(I % 5) * 128;
    WO.Seed = Seed;
    std::vector<uint8_t> Bytes = nacl::generateWorkload(WO);
    Rng ImgRng(mutationSeed(Seed, 0));
    if (I % 4 == 3 && Bytes.size() > core::BundleSize)
      Bytes.resize(Bytes.size() - 1 - ImgRng.below(core::BundleSize - 1));
    if (Bytes.empty())
      continue;

    incr::IncrementalOptions IO;
    IO.ChunkBytes = ChunkRotation[I % std::size(ChunkRotation)];
    incr::IncrementalVerifier Incr(T, IO, &M);

    incr::ImageId Id = Incr.open(Bytes);
    std::string Diff = comparePatchVerdicts(Incr.lastCheck(Id), Full.check(Bytes));
    if (!Diff.empty()) {
      ++Disagreements;
      std::printf("PATCH DISAGREEMENT at image-seed=%llu step=open: %s\n",
                  static_cast<unsigned long long>(Seed), Diff.c_str());
    }

    for (uint64_t Step = 1; Step <= O.Steps; ++Step) {
      Rng StepRng(mutationSeed(Seed, Step));
      fuzz::PatchOp P = fuzz::nextStructuredPatch(Bytes, StepRng);
      for (size_t B = 0; B < P.Bytes.size(); ++B)
        Bytes[P.Offset + B] = P.Bytes[B];
      Incr.patch(Id, P.Offset, P.Bytes.data(), uint32_t(P.Bytes.size()));
      ++StepsRun;
      Diff = comparePatchVerdicts(Incr.lastCheck(Id), Full.check(Bytes));
      if (!Diff.empty()) {
        ++Disagreements;
        std::printf("PATCH DISAGREEMENT at image-seed=%llu step=%llu "
                    "(%s at %u, %zu bytes, chunk=%u): %s\n",
                    static_cast<unsigned long long>(Seed),
                    static_cast<unsigned long long>(Step),
                    fuzz::patchKindName(P.Kind), P.Offset, P.Bytes.size(),
                    IO.ChunkBytes, Diff.c_str());
        std::printf("  repro: --patches --images 1 --base-seed %llu "
                    "--steps %llu --size %u\n",
                    static_cast<unsigned long long>(Seed),
                    static_cast<unsigned long long>(Step), O.Size);
        std::printf("  image (%zu bytes):\n", Bytes.size());
        hexDump(Bytes);
      }
    }
    Incr.close(Id);
  }

  std::printf("fuzz_differential --patches: %llu images, %llu patch steps, "
              "%llu disagreements (chunk hits %llu, misses %llu, "
              "evictions %llu)\n",
              static_cast<unsigned long long>(O.Images),
              static_cast<unsigned long long>(StepsRun),
              static_cast<unsigned long long>(Disagreements),
              static_cast<unsigned long long>(M.IncrChunkHits.get()),
              static_cast<unsigned long long>(M.IncrChunkMisses.get()),
              static_cast<unsigned long long>(M.IncrChunkEvictions.get()));
  if (O.Stats)
    std::fputs(M.dump().c_str(), stdout);
  return Disagreements ? 1 : 0;
}

/// The three-engine lint differential: long-lived images mutated in
/// place, and after every patch the sequential lint, the shard-derived
/// lint (rotating shard counts), and the incrementally maintained lint
/// must all render byte-identical reports. Chunk geometry rotates like
/// the patch differential's; a quarter of the images are tail-truncated
/// so incomplete-parse lint states stay in the loop. Also counts, per
/// structured-patch kind, how many steps actually flipped the
/// diagnostic counts — the coverage signal for the lint-directed kinds.
int runLintDifferential(const CliOptions &O, svc::Metrics &M) {
  const core::PolicyTables &T = core::policyTables();
  static const uint32_t ChunkRotation[] = {512, 32, 256, 1024};
  static const uint32_t ShardRotation[] = {1, 2, 3, 5, 8};
  static const fuzz::PatchKind AllKinds[] = {
      fuzz::PatchKind::BundleLocalEdit,  fuzz::PatchKind::SeamStraddle,
      fuzz::PatchKind::MaskedPairSplit,  fuzz::PatchKind::RandomBytes,
      fuzz::PatchKind::DeadPairRevive,   fuzz::PatchKind::CallSeamMisalign,
      fuzz::PatchKind::BranchIntoPair};

  uint64_t Disagreements = 0;
  uint64_t Compared = 0;
  uint64_t Flipped[std::size(AllKinds)] = {};
  uint64_t Drawn[std::size(AllKinds)] = {};

  auto ReportLintDiff = [&](uint64_t Seed, uint64_t Step, const char *Engine,
                            const std::vector<uint8_t> &Bytes) {
    ++Disagreements;
    std::printf("LINT DISAGREEMENT at image-seed=%llu step=%llu: %s render "
                "differs from sequential lintImage\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(Step), Engine);
    std::printf("  repro: --lint --images 1 --base-seed %llu --steps %llu "
                "--size %u\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(Step), O.Size);
    std::printf("  image (%zu bytes):\n", Bytes.size());
    hexDump(Bytes);
  };

  for (uint64_t I = 0; I < O.Images; ++I) {
    uint64_t Seed = O.BaseSeed + I;
    nacl::WorkloadOptions WO;
    WO.TargetBytes = O.Size + uint32_t(I % 5) * 128;
    WO.Seed = Seed;
    std::vector<uint8_t> Bytes = nacl::generateWorkload(WO);
    Rng ImgRng(mutationSeed(Seed, 0));
    if (I % 4 == 3 && Bytes.size() > core::BundleSize)
      Bytes.resize(Bytes.size() - 1 - ImgRng.below(core::BundleSize - 1));
    if (Bytes.empty())
      continue;

    incr::IncrementalOptions IO;
    IO.ChunkBytes = ChunkRotation[I % std::size(ChunkRotation)];
    incr::IncrementalVerifier Incr(T, IO, &M);
    analysis::IncrementalLinter Lint(T, &M);

    incr::ImageId Id = Incr.open(Bytes);
    Lint.open(Id, Bytes.data(), uint32_t(Bytes.size()), IO.ChunkBytes);

    analysis::CfgLintResult Seq = analysis::lintImage(T, Bytes);
    std::string SeqRender = Seq.render();
    uint32_t PrevE = Seq.Errors, PrevW = Seq.Warnings, PrevN = Seq.Notes;

    for (uint64_t Step = 0; Step <= O.Steps; ++Step) {
      if (Step) {
        Rng StepRng(mutationSeed(Seed, Step));
        fuzz::PatchOp P = fuzz::nextStructuredPatch(Bytes, StepRng);
        for (size_t B = 0; B < P.Bytes.size(); ++B)
          Bytes[P.Offset + B] = P.Bytes[B];
        incr::IncrResult R =
            Incr.patch(Id, P.Offset, P.Bytes.data(), uint32_t(P.Bytes.size()));
        Lint.relint(Id, Bytes.data(), uint32_t(Bytes.size()), R);
        Seq = analysis::lintImage(T, Bytes);
        SeqRender = Seq.render();
        ++Drawn[size_t(P.Kind)];
        if (Seq.Errors != PrevE || Seq.Warnings != PrevW || Seq.Notes != PrevN)
          ++Flipped[size_t(P.Kind)];
        PrevE = Seq.Errors;
        PrevW = Seq.Warnings;
        PrevN = Seq.Notes;
      }

      uint32_t Shards =
          ShardRotation[(I + Step) % std::size(ShardRotation)];
      analysis::CfgLintResult Shd = analysis::lintImageFromShards(
          T, Bytes.data(), uint32_t(Bytes.size()), Shards, &M);
      ++Compared;
      if (Shd.render() != SeqRender || Shd.Errors != Seq.Errors ||
          Shd.Warnings != Seq.Warnings || Shd.Notes != Seq.Notes)
        ReportLintDiff(Seed, Step, "shard-derived lint", Bytes);
      if (Lint.render(Id) != SeqRender)
        ReportLintDiff(Seed, Step, "incremental lint", Bytes);
    }
    Lint.close(Id);
    Incr.close(Id);
  }

  std::printf("fuzz_differential --lint: %llu images, %llu lint comparisons "
              "x3 engines, %llu disagreements (incr relints %llu, fast "
              "paths %llu)\n",
              static_cast<unsigned long long>(O.Images),
              static_cast<unsigned long long>(Compared),
              static_cast<unsigned long long>(Disagreements),
              static_cast<unsigned long long>(M.LintIncrRelints.get()),
              static_cast<unsigned long long>(M.LintIncrFastPath.get()));
  std::printf("  diag flips by patch kind:");
  for (size_t K = 0; K < std::size(AllKinds); ++K)
    std::printf(" %s %llu/%llu%s", fuzz::patchKindName(AllKinds[K]),
                static_cast<unsigned long long>(Flipped[K]),
                static_cast<unsigned long long>(Drawn[K]),
                K + 1 < std::size(AllKinds) ? "," : "\n");
  if (O.Stats)
    std::fputs(M.dump().c_str(), stdout);
  return Disagreements ? 1 : 0;
}

/// The fused-vs-legacy engine lockstep: every mutated image runs
/// through the legacy three-table per-byte checker (`checkLegacy`, the
/// reference) and through the fused engine three ways — the sequential
/// instrumented check, the bare Figure-5 boolean, and the fused shard
/// scan + seam-aware merge under rotating shard counts (so run skipping
/// is exercised against shard limits, not just image ends). All fused
/// results must be bit-identical to the reference: verdict, reject
/// reason, and the Valid/Target/PairJmp bitmaps. A quarter of the
/// iterations tail-truncate the image to a non-bundle-multiple size so
/// the run-skip tail and truncated-instruction rejects stay in the
/// loop.
int runFusedDifferential(const CliOptions &O, svc::Metrics &M) {
  const core::PolicyTables &T = core::policyTables();
  const core::FusedPolicy &FP = core::fusedPolicyTables();
  core::RockSalt Fused(FP);
  static const uint32_t ShardRotation[] = {1, 2, 3, 5, 8};

  uint64_t Disagreements = 0;
  uint64_t ImagesRun = 0;
  std::vector<core::ShardScan> Shards; // reused scratch

  auto ReportFusedDiff = [&](uint64_t Seed, uint64_t Iter, const char *Path,
                             const std::string &Detail,
                             const std::vector<uint8_t> &Img) {
    ++Disagreements;
    std::printf("FUSED DISAGREEMENT at seed=%llu iter=%llu: %s: %s\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(Iter), Path, Detail.c_str());
    std::printf("  repro: --fused --seeds 1 --base-seed %llu --iters %llu "
                "--size %u\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(Iter), O.Size);
    std::printf("  image (%zu bytes):\n", Img.size());
    hexDump(Img);
  };

  for (uint64_t S = 0; S < O.Seeds; ++S) {
    uint64_t WorkloadSeed = O.BaseSeed + S;
    nacl::WorkloadOptions WO;
    WO.TargetBytes = O.Size;
    WO.Seed = WorkloadSeed;
    std::vector<uint8_t> Base = nacl::generateWorkload(WO);
    std::vector<uint8_t> Cur = Base;

    for (uint64_t Iter = 0; Iter <= O.Iters; ++Iter) {
      if (Iter) {
        if (Iter % 8 == 1)
          Cur = Base;
        Rng MutRng(mutationSeed(WorkloadSeed, Iter));
        Cur = fuzz::mutateStructured(Cur, MutRng);
      }
      std::vector<uint8_t> Img = Cur;
      Rng JitRng(mutationSeed(WorkloadSeed, Iter) ^ 0xF05EDull);
      if (Iter % 4 == 3 && Img.size() > core::BundleSize)
        Img.resize(Img.size() - 1 - JitRng.below(core::BundleSize - 1));
      uint32_t Size = uint32_t(Img.size());
      ++ImagesRun;

      core::CheckResult Ref = core::checkLegacy(T, Img.data(), Size);

      std::string Diff = comparePatchVerdicts(Fused.check(Img), Ref);
      if (!Diff.empty())
        ReportFusedDiff(WorkloadSeed, Iter, "fused check", Diff, Img);

      if (core::verifyImage(FP, Img.data(), Size) != Ref.Ok)
        ReportFusedDiff(WorkloadSeed, Iter, "fused verifyImage",
                        Ref.Ok ? "verdict REJECT (reference ACCEPT)"
                               : "verdict ACCEPT (reference REJECT)",
                        Img);

      uint32_t NumShards =
          ShardRotation[(S + Iter) % std::size(ShardRotation)];
      core::partitionShards(Size, NumShards, Shards);
      for (core::ShardScan &Sh : Shards)
        core::scanShard(FP, Img.data(), Size, Sh);
      Diff = comparePatchVerdicts(
          core::mergeShardScans(FP, Img.data(), Size, Shards), Ref);
      if (!Diff.empty()) {
        char Path[48];
        std::snprintf(Path, sizeof(Path), "fused shard merge [shards=%u]",
                      NumShards);
        ReportFusedDiff(WorkloadSeed, Iter, Path, Diff, Img);
      }
    }
  }

  std::printf("fuzz_differential --fused: %llu images x3 fused paths, "
              "%llu disagreements (seeds %llu..%llu, %llu iters each, "
              "%u bytes)\n",
              static_cast<unsigned long long>(ImagesRun),
              static_cast<unsigned long long>(Disagreements),
              static_cast<unsigned long long>(O.BaseSeed),
              static_cast<unsigned long long>(O.BaseSeed + O.Seeds - 1),
              static_cast<unsigned long long>(O.Iters), O.Size);
  if (O.Stats)
    std::fputs(M.dump().c_str(), stdout);
  return Disagreements ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  if (O.LintDiff) {
    svc::Metrics M;
    return runLintDifferential(O, M);
  }

  if (O.Patches) {
    svc::Metrics M;
    return runPatchDifferential(O, M);
  }

  if (O.FusedDiff) {
    svc::Metrics M;
    return runFusedDifferential(O, M);
  }

  svc::Metrics M;
  fuzz::OracleOptions OO;
  OO.RunSlow = O.RunSlow;
  OO.RunParallel = O.RunParallel;
  OO.M = &M;
  fuzz::DifferentialOracle Oracle(OO);

  uint64_t Disagreements = 0;

  for (uint64_t S = 0; S < O.Seeds; ++S) {
    uint64_t WorkloadSeed = O.BaseSeed + S;
    nacl::WorkloadOptions WO;
    WO.TargetBytes = O.Size;
    WO.Seed = WorkloadSeed;
    std::vector<uint8_t> Base = nacl::generateWorkload(WO);
    std::vector<uint8_t> Cur = Base;

    // Iteration 0 is the unmutated workload; it must be accepted by all
    // paths, so a disagreement here is as reportable as any other.
    for (uint64_t Iter = 0; Iter <= O.Iters; ++Iter) {
      if (Iter) {
        // Restart from the base image every 8 iterations so mutations
        // compound a little but never drift into pure noise.
        if (Iter % 8 == 1)
          Cur = Base;
        Rng MutRng(mutationSeed(WorkloadSeed, Iter));
        Cur = fuzz::mutateStructured(Cur, MutRng);
      }

      fuzz::OracleReport Rep = Oracle.run(Cur);
      if (Rep.agree())
        continue;

      ++Disagreements;
      reportDisagreement(Rep, WorkloadSeed, Iter);
      std::printf("  repro: %s --seeds 1 --base-seed %llu --iters %llu "
                  "--size %u%s%s\n",
                  Argv[0], static_cast<unsigned long long>(WorkloadSeed),
                  static_cast<unsigned long long>(Iter), O.Size,
                  O.RunSlow ? "" : " --no-slow",
                  O.RunParallel ? "" : " --no-parallel");

      std::vector<uint8_t> Repro = Cur;
      if (O.Minimize) {
        fuzz::MinimizeOptions MO;
        MO.M = &M;
        fuzz::MinimizeResult MR = fuzz::minimizeImage(
            Repro, [&](const std::vector<uint8_t> &C) {
              return Oracle.disagrees(C);
            },
            MO);
        std::printf("  minimized %zu -> %zu bytes in %llu evals\n",
                    Repro.size(), MR.Image.size(),
                    static_cast<unsigned long long>(MR.Evals));
        Repro = std::move(MR.Image);
      }
      std::printf("  image (%zu bytes):\n", Repro.size());
      hexDump(Repro);
      if (!O.CorpusDir.empty()) {
        std::string Path =
            fuzz::writeReproducer(O.CorpusDir, "disagree", Repro);
        if (!Path.empty())
          std::printf("  reproducer written: %s\n", Path.c_str());
        else
          std::fprintf(stderr, "  error: could not write reproducer to %s\n",
                       O.CorpusDir.c_str());
      }
    }
  }

  std::printf("fuzz_differential: %llu images, %llu disagreements "
              "(seeds %llu..%llu, %llu iters each, %u bytes)\n",
              static_cast<unsigned long long>(M.OracleRuns.get()),
              static_cast<unsigned long long>(Disagreements),
              static_cast<unsigned long long>(O.BaseSeed),
              static_cast<unsigned long long>(O.BaseSeed + O.Seeds - 1),
              static_cast<unsigned long long>(O.Iters),
              O.Size);
  if (Disagreements) {
    // Every seed involved, for one-line triage in CI logs.
    std::printf("seeds used:");
    for (uint64_t S = 0; S < O.Seeds; ++S)
      std::printf(" %llu", static_cast<unsigned long long>(O.BaseSeed + S));
    std::printf("\n");
  }
  if (O.Stats)
    std::fputs(M.dump().c_str(), stdout);

  return Disagreements ? 1 : 0;
}
